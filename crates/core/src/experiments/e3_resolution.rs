//! **E3 — mapping resolution hidden inside the DNS time (claim C2).**
//!
//! The paper's goal 2: `T_DNS + T_map_resol ≈ T_DNS`. For each control
//! plane we measure `T_DNS` (query → answer at the host) and the
//! *effective* extra mapping latency `T_map_eff` — how long after the DNS
//! answer the first data packet can actually leave with a mapping in
//! place. For pull systems (with the Queue policy so nothing is lost)
//! that is the ITR queue delay of the first packet; for PCE/NERD the
//! mapping pre-exists and the extra is zero.
//!
//! The reported ratio is `(T_DNS + T_map_eff) / T_DNS` — the paper claims
//! ≈ 1.0 for its control plane.

use crate::experiments::report::{Cell, ExpReport, Section};
use crate::experiments::sweep::Sweep;
use crate::hosts::FlowMode;
use crate::scenario::{flow_script, CpKind};
use crate::spec::ScenarioSpec;
use lispdp::{MissPolicy, Xtr};
use netsim::Ns;
use simstats::Table;

/// One measurement row.
#[derive(Debug, Clone)]
pub struct ResolutionRow {
    /// Control plane label.
    pub cp: String,
    /// Provider-link one-way delay (ms).
    pub owd_ms: u64,
    /// Measured `T_DNS` (ms).
    pub t_dns_ms: f64,
    /// Effective extra mapping latency after the answer (ms).
    pub t_map_eff_ms: f64,
    /// `(T_DNS + T_map_eff) / T_DNS`.
    pub ratio: f64,
}

/// Sweep result.
#[derive(Debug, Clone, Default)]
pub struct ResolutionResult {
    /// All rows.
    pub rows: Vec<ResolutionRow>,
}

impl ResolutionResult {
    /// The typed result section.
    pub fn section(&self) -> Section {
        let mut s = Section::new(
            "resolution",
            "E3: (T_DNS + T_map_eff)/T_DNS per control plane",
            &["cp", "owd_ms", "t_dns_ms", "t_map_eff_ms", "ratio"],
        );
        for r in &self.rows {
            s.row(vec![
                Cell::str(r.cp.clone()),
                Cell::u64(r.owd_ms),
                Cell::f64(r.t_dns_ms, 1),
                Cell::f64(r.t_map_eff_ms, 1),
                Cell::f64(r.ratio, 3),
            ]);
        }
        s
    }

    /// Render the table.
    pub fn table(&self) -> Table {
        self.section().table()
    }
}

/// Control planes compared in E3.
pub fn e3_variants() -> Vec<CpKind> {
    vec![
        CpKind::LispDrop, // run with Queue policy override below
        CpKind::Alt { hops: 4 },
        CpKind::Cons { cdr_depth: 1 },
        CpKind::Nerd,
        CpKind::Pce,
    ]
}

/// Run one (cp, owd) cell.
pub fn run_resolution_cell(cp: CpKind, owd: Ns, seed: u64) -> ResolutionRow {
    let mut world = ScenarioSpec::fig1(cp)
        .with(|s| {
            s.set_provider_owd(owd);
            s.set_flows(flow_script(
                &[Ns::ZERO],
                4,
                FlowMode::Udp {
                    packets: 4,
                    interval: Ns::from_ms(1),
                    size: 200,
                },
            ));
        })
        .build(seed);
    // Queue policy for pull systems so the first packet's waiting time is
    // exactly T_map.
    world.override_pull_miss_policy(MissPolicy::Queue { max_packets: 64 });
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(60));

    let rec = world.records()[0].clone();
    let t_dns = rec.dns_time().unwrap_or(Ns::ZERO);
    // First-packet queue delay across ITRs = T_map_eff for pull systems.
    let t_map_eff = world
        .all_xtrs()
        .iter()
        .flat_map(|&x| world.sim.node_ref::<Xtr>(x).queue_delays.clone())
        .max()
        .unwrap_or(Ns::ZERO);
    let t_dns_ms = t_dns.as_ms_f64();
    let t_map_eff_ms = t_map_eff.as_ms_f64();
    let ratio = if t_dns_ms > 0.0 {
        (t_dns_ms + t_map_eff_ms) / t_dns_ms
    } else {
        0.0
    };
    ResolutionRow {
        cp: cp.label().into_owned(),
        owd_ms: owd.as_ms(),
        t_dns_ms,
        t_map_eff_ms,
        ratio,
    }
}

/// Full sweep on up to `jobs` workers (`0` = auto).
pub fn run_resolution_jobs(seed: u64, jobs: usize) -> ResolutionResult {
    let mut cells = Vec::new();
    for owd in crate::experiments::OWD_SWEEP {
        for cp in e3_variants() {
            cells.push((cp, owd));
        }
    }
    let rows = Sweep::new("e3", cells).run(
        jobs,
        |&(cp, owd)| format!("{}/owd={}ms", cp.label(), owd.as_ms()),
        |&(cp, owd)| run_resolution_cell(cp, owd, seed),
    );
    ResolutionResult { rows }
}

/// Full sweep, serial.
pub fn run_resolution(seed: u64) -> ResolutionResult {
    run_resolution_jobs(seed, 1)
}

/// **Ablation A2** — PCE precompute vs. on-demand computation at step 6.
/// Returns `(t_dns_precomputed_ms, t_dns_on_demand_ms)`.
pub fn run_ablation_precompute(seed: u64) -> (f64, f64) {
    let run = |precompute: bool| -> f64 {
        let mut world = ScenarioSpec::fig1(CpKind::Pce)
            .with(|s| {
                s.pce_precompute = precompute;
                s.set_flows(flow_script(
                    &[Ns::ZERO],
                    4,
                    FlowMode::Udp {
                        packets: 1,
                        interval: Ns::from_ms(1),
                        size: 100,
                    },
                ));
            })
            .build(seed);
        world.schedule_all_flows();
        world.sim.run_until(Ns::from_secs(30));
        world.records()[0]
            .dns_time()
            .map(|t| t.as_ms_f64())
            .unwrap_or(f64::NAN)
    };
    (run(true), run(false))
}

/// The A2 ablation as a typed section.
pub fn ablation_precompute_section(seed: u64) -> Section {
    let (pre, demand) = run_ablation_precompute(seed);
    let mut s = Section::new(
        "ablation_precompute",
        "A2: PCE precompute vs on-demand mapping computation",
        &["variant", "t_dns_ms"],
    );
    s.row(vec![Cell::str("precomputed (paper)"), Cell::f64(pre, 1)]);
    s.row(vec![Cell::str("on-demand (ablated)"), Cell::f64(demand, 1)]);
    s
}

/// The registry entry for E3 (includes the A2 ablation section).
pub struct E3Resolution;

impl crate::experiments::Experiment for E3Resolution {
    fn name(&self) -> &'static str {
        "e3"
    }
    fn title(&self) -> &'static str {
        "Mapping resolution hidden inside the DNS time"
    }
    fn run(&self, seed: u64, jobs: usize) -> ExpReport {
        ExpReport::new(self.name(), self.title())
            .with_section(run_resolution_jobs(seed, jobs).section())
            .with_section(ablation_precompute_section(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pce_ratio_is_one() {
        let row = run_resolution_cell(CpKind::Pce, Ns::from_ms(30), 1);
        assert!(row.t_map_eff_ms == 0.0, "{row:?}");
        assert!((row.ratio - 1.0).abs() < 1e-9, "{row:?}");
        assert!(row.t_dns_ms > 100.0, "hierarchy walk expected: {row:?}");
    }

    #[test]
    fn pull_ratio_exceeds_one() {
        let row = run_resolution_cell(CpKind::LispDrop, Ns::from_ms(30), 1);
        assert!(row.ratio > 1.1, "{row:?}");
        assert!(row.t_map_eff_ms > 50.0, "{row:?}");
    }

    #[test]
    fn alt_worse_than_mrms() {
        let mrms = run_resolution_cell(CpKind::LispDrop, Ns::from_ms(30), 1);
        let alt = run_resolution_cell(CpKind::Alt { hops: 6 }, Ns::from_ms(30), 1);
        assert!(
            alt.t_map_eff_ms > mrms.t_map_eff_ms,
            "alt {} vs mrms {}",
            alt.t_map_eff_ms,
            mrms.t_map_eff_ms
        );
    }

    #[test]
    fn ablation_on_demand_slower() {
        let (pre, demand) = run_ablation_precompute(1);
        assert!(demand > pre, "precompute {pre} vs on-demand {demand}");
        // The 2 ms on-demand penalty lands once on the DNS path.
        assert!(
            demand - pre >= 1.5 && demand - pre <= 3.0,
            "delta {}",
            demand - pre
        );
    }
}
