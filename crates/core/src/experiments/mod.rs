//! Experiment harnesses (see DESIGN.md §4 and §6 for the index).
//!
//! Each `run_*` function builds its worlds, runs them, and returns a
//! typed result struct with `section()` / `table()` renderers. Every
//! experiment is also registered behind the [`Experiment`] trait, so
//! runners iterate [`registry`] instead of hand-listing modules. Grid
//! experiments fan their cells across the [`sweep::Sweep`] worker pool
//! (`jobs`: `0` = auto, `1` = serial; reports are byte-identical either
//! way — DESIGN.md §8):
//!
//! ```no_run
//! for exp in pcelisp::experiments::registry() {
//!     let report = exp.run(1, 0); // seed 1, auto-parallel
//!     report.print();
//!     let _json = report.to_json();
//! }
//! ```

pub mod report;
pub mod sweep;

pub mod e10_recovery;
pub mod e11_scale_xl;
pub mod e12_adversarial;
pub mod e13_availability;
pub mod e1_fig1;
pub mod e2_drops;
pub mod e3_resolution;
pub mod e4_tcp_setup;
pub mod e5_te;
pub mod e6_cache;
pub mod e7_reverse;
pub mod e8_overhead;
pub mod e9_scale;

pub use report::{Cell, ExpReport, Experiment, Section, Value};
pub use sweep::Sweep;

/// The provider-link one-way-delay axis shared by the Fig.-1 sweeps
/// (E2 drops, E3 resolution, E4 TCP setup) — one definition so the
/// grids can't drift apart and each experiment's golden pins the same
/// axis.
pub const OWD_SWEEP: [netsim::Ns; 4] = [
    netsim::Ns::from_ms(15),
    netsim::Ns::from_ms(30),
    netsim::Ns::from_ms(60),
    netsim::Ns::from_ms(100),
];

/// Every experiment in run order. This is the single source of truth:
/// runner `--list` output, the smoke-test expectations, and the docs
/// index all derive from it, so adding an entry here is the only step a
/// new experiment needs to be picked up everywhere.
pub fn registry() -> Vec<Box<dyn Experiment>> {
    vec![
        Box::new(e1_fig1::E1Fig1),
        Box::new(e2_drops::E2Drops),
        Box::new(e3_resolution::E3Resolution),
        Box::new(e4_tcp_setup::E4TcpSetup),
        Box::new(e5_te::E5Te),
        Box::new(e6_cache::E6Cache),
        Box::new(e7_reverse::E7Reverse),
        Box::new(e8_overhead::E8Overhead),
        Box::new(e9_scale::E9Scale),
        Box::new(e10_recovery::E10Recovery),
        Box::new(e11_scale_xl::E11ScaleXl),
        Box::new(e12_adversarial::E12Adversarial),
        Box::new(e13_availability::E13Availability),
    ]
}

/// Look up one experiment by its registry name (`"e1"`, `"e2"`, …).
pub fn by_name(name: &str) -> Option<Box<dyn Experiment>> {
    registry().into_iter().find(|e| e.name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_are_unique_and_ordered() {
        // Derived from the registry length, not a hand-kept list, so a
        // new experiment only has to be added in `registry()` itself.
        let names: Vec<&str> = registry().iter().map(|e| e.name()).collect();
        let expected: Vec<String> = (1..=registry().len()).map(|i| format!("e{i}")).collect();
        assert_eq!(names, expected);
    }

    #[test]
    fn by_name_finds_and_misses() {
        assert!(by_name("e5").is_some());
        assert!(by_name("e99").is_none());
    }
}
