//! Experiment harnesses (see DESIGN.md §4 for the index).
//!
//! Each `run_*` function builds its worlds, runs them, and returns a
//! typed result struct with a `table()` renderer; the `bench` crate binary
//! for each experiment simply calls these and prints.

pub mod e1_fig1;
pub mod e2_drops;
pub mod e3_resolution;
pub mod e4_tcp_setup;
pub mod e5_te;
pub mod e6_cache;
pub mod e7_reverse;
pub mod e8_overhead;
