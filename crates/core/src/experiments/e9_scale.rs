//! **E9 — mapping-system scale sweep across destination-site counts.**
//!
//! The paper evaluates one two-site figure; related work (Coras et al.
//! on mapping-cache scalability, LazyCtrl on control planes only
//! differentiating at scale) argues the interesting regime is *many*
//! sites. This experiment uses the declarative spec layer to grow the
//! world: N ∈ {2, 8, 32} destination sites, Zipf cross-site popularity,
//! and every control plane, comparing
//!
//! * **map-request latency** — how long the first packet of a missing
//!   flow waits at the ITR before a mapping exists (pull systems run
//!   their native policy: queueing variants report the measured wait,
//!   drop variants lose packets instead);
//! * **miss drops** — packets lost at ITRs while resolving;
//! * **control-plane message counts** — the E8 tally, which exposes how
//!   each design's cost scales with the number of sites (NERD pushes
//!   the whole database everywhere; PCE stays per-active-flow).

use crate::experiments::e8_overhead::control_plane_tally;
use crate::experiments::report::{Cell, ExpReport, Section};
use crate::scenario::CpKind;
use crate::spec::ScenarioSpec;
use lispdp::Xtr;
use netsim::Ns;
use simstats::Table;

/// One (control plane, site count) measurement.
#[derive(Debug, Clone)]
pub struct ScaleRow {
    /// Control plane label.
    pub cp: String,
    /// Destination-site count.
    pub n_sites: usize,
    /// Flows generated (3 per destination site).
    pub flows: usize,
    /// UDP packets sent by the client.
    pub sent: u64,
    /// Packets delivered across all destination sites.
    pub delivered: u64,
    /// Packets dropped at ITRs for lack of a mapping.
    pub miss_drops: u64,
    /// Mean ITR wait of packets held during resolution (ms); 0 when the
    /// control plane never holds packets (push systems) or drops
    /// instead of queueing.
    pub mean_map_latency_ms: f64,
    /// Worst single-packet resolution wait (ms).
    pub max_map_latency_ms: f64,
    /// Control messages attributable to the mapping system (E8 tally).
    pub control_msgs: u64,
    /// Mapping state across all border routers after the run.
    pub itr_state_entries: u64,
    /// Database bytes pushed (NERD).
    pub push_bytes: u64,
}

/// E9 result.
#[derive(Debug, Clone, Default)]
pub struct ScaleResult {
    /// All rows, site-count-major.
    pub rows: Vec<ScaleRow>,
}

impl ScaleResult {
    /// The typed result section.
    pub fn section(&self) -> Section {
        let mut s = Section::new(
            "scale",
            "E9: mapping-system scale — N destination sites, Zipf cross-site popularity",
            &[
                "cp",
                "n_sites",
                "flows",
                "sent",
                "delivered",
                "miss_drops",
                "mean_lat_ms",
                "max_lat_ms",
                "ctl_msgs",
                "itr_state",
                "push_bytes",
            ],
        );
        for r in &self.rows {
            s.row(vec![
                Cell::str(r.cp.clone()),
                Cell::usize(r.n_sites),
                Cell::usize(r.flows),
                Cell::u64(r.sent),
                Cell::u64(r.delivered),
                Cell::u64(r.miss_drops),
                Cell::f64(r.mean_map_latency_ms, 1),
                Cell::f64(r.max_map_latency_ms, 1),
                Cell::u64(r.control_msgs),
                Cell::u64(r.itr_state_entries),
                Cell::u64(r.push_bytes),
            ]);
        }
        s
    }

    /// Render the table.
    pub fn table(&self) -> Table {
        self.section().table()
    }

    /// Rows for one control plane, ordered by site count.
    pub fn rows_for(&self, cp: &str) -> Vec<&ScaleRow> {
        self.rows.iter().filter(|r| r.cp == cp).collect()
    }
}

/// Destination-site counts of the sweep.
pub const SITE_COUNTS: [usize; 3] = [2, 8, 32];

/// Destination EIDs per site.
pub const HOSTS_PER_SITE: usize = 4;

/// Run one (cp, n_sites) cell at the E9 host population.
pub fn run_scale_cell(cp: CpKind, n_sites: usize, seed: u64) -> ScaleRow {
    run_scale_cell_at(cp, n_sites, HOSTS_PER_SITE, seed)
}

/// Run one (cp, n_sites) cell with an explicit per-site host count —
/// the shared cell runner behind E9 and the E11 XL sweep.
pub fn run_scale_cell_at(cp: CpKind, n_sites: usize, hosts_per_site: usize, seed: u64) -> ScaleRow {
    let mut world = ScenarioSpec::multi_site(cp, n_sites, hosts_per_site).build(seed);
    world.schedule_all_flows();
    let horizon = world.last_flow_start() + Ns::from_secs(30);
    world.sim.run_until(horizon);

    let sent: u64 = world.records().iter().map(|r| u64::from(r.data_sent)).sum();
    let delivered = world.server_udp_received();
    let mut miss_drops = 0u64;
    let mut delays: Vec<Ns> = Vec::new();
    for x in world.all_xtrs() {
        let xtr = world.sim.node_ref::<Xtr>(x);
        miss_drops += xtr.stats.miss_drops;
        delays.extend(xtr.queue_delays.iter().copied());
    }
    let mean_map_latency_ms = if delays.is_empty() {
        0.0
    } else {
        delays.iter().map(|d| d.as_ms_f64()).sum::<f64>() / delays.len() as f64
    };
    let max_map_latency_ms = delays.iter().map(|d| d.as_ms_f64()).fold(0.0f64, f64::max);
    let tally = control_plane_tally(&world);
    let flows = world.records().len();

    ScaleRow {
        cp: cp.label().into_owned(),
        n_sites,
        flows,
        sent,
        delivered,
        miss_drops,
        mean_map_latency_ms,
        max_map_latency_ms,
        control_msgs: tally.control_msgs,
        itr_state_entries: tally.itr_state_entries,
        push_bytes: tally.push_bytes,
    }
}

/// Full sweep on up to `jobs` workers (`0` = auto): every [`CpKind`]
/// at every site count.
pub fn run_scale_jobs(seed: u64, jobs: usize) -> ScaleResult {
    let mut cells = Vec::new();
    for n in SITE_COUNTS {
        for cp in CpKind::all() {
            cells.push((cp, n));
        }
    }
    let rows = crate::experiments::sweep::Sweep::new("e9", cells).run(
        jobs,
        |&(cp, n)| format!("{}/n={n}", cp.label()),
        |&(cp, n)| run_scale_cell(cp, n, seed),
    );
    ScaleResult { rows }
}

/// Full sweep, serial.
pub fn run_scale(seed: u64) -> ScaleResult {
    run_scale_jobs(seed, 1)
}

/// The registry entry for E9.
pub struct E9Scale;

impl crate::experiments::Experiment for E9Scale {
    fn name(&self) -> &'static str {
        "e9"
    }
    fn title(&self) -> &'static str {
        "Mapping-system scale sweep (N destination sites)"
    }
    fn run(&self, seed: u64, jobs: usize) -> ExpReport {
        ExpReport::new(self.name(), self.title()).with_section(run_scale_jobs(seed, jobs).section())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pce_never_drops_or_waits_at_any_scale() {
        for n in [2, 8] {
            let row = run_scale_cell(CpKind::Pce, n, 1);
            assert_eq!(row.miss_drops, 0, "{row:?}");
            assert_eq!(row.mean_map_latency_ms, 0.0, "{row:?}");
            assert_eq!(row.delivered, row.sent, "{row:?}");
        }
    }

    #[test]
    fn nerd_push_bytes_grow_with_sites() {
        let small = run_scale_cell(CpKind::Nerd, 2, 1);
        let big = run_scale_cell(CpKind::Nerd, 8, 1);
        assert!(small.push_bytes > 0, "{small:?}");
        assert!(
            big.push_bytes > 2 * small.push_bytes,
            "push bytes must scale superlinearly with sites (db × subscribers): \
             small {} big {}",
            small.push_bytes,
            big.push_bytes
        );
    }

    #[test]
    fn drop_variant_loses_packets_queue_variant_waits() {
        let drop = run_scale_cell(CpKind::LispDrop, 2, 1);
        assert!(drop.miss_drops > 0, "{drop:?}");
        let queue = run_scale_cell(CpKind::LispQueue, 2, 1);
        assert_eq!(queue.miss_drops, 0, "{queue:?}");
        assert!(queue.mean_map_latency_ms > 10.0, "{queue:?}");
        assert_eq!(queue.delivered, queue.sent, "{queue:?}");
    }

    #[test]
    fn every_cp_runs_at_32_sites() {
        // The acceptance gate: N = 32 under every control plane builds
        // and makes forward progress.
        for cp in CpKind::all() {
            let row = run_scale_cell(cp, 32, 2);
            assert!(row.sent > 0, "{row:?}");
            assert!(
                row.delivered > 0,
                "{}: at least some packets must arrive: {row:?}",
                row.cp
            );
        }
    }
}
