//! **E7 — two-way mapping completion (paper §2, after step 8).**
//!
//! When the first data packet reaches the destination ETR, it installs
//! the return mapping, multicasts it to its peer xTRs and updates the
//! PCE database. This experiment measures how long each of those takes
//! after the first decapsulation, and verifies correctness under
//! concurrent flows.

use crate::experiments::report::{Cell, ExpReport, Section};
use crate::hosts::FlowMode;
use crate::pce::Pce;
use crate::scenario::{flow_script, CpKind};
use crate::spec::ScenarioSpec;
use lispdp::Xtr;
use netsim::Ns;
use simstats::Table;

/// E7 result.
#[derive(Debug, Clone)]
pub struct ReverseResult {
    /// First decapsulation at the ETR.
    pub t_first_decap: Ns,
    /// Return mapping installed locally at the decapsulating ETR.
    pub t_local_install: Ns,
    /// Return mapping installed at the *peer* xTR (multicast received).
    pub t_peer_install: Ns,
    /// PCE database updated.
    pub t_db_update: Ns,
    /// Flows in the concurrent phase.
    pub concurrent_flows: usize,
    /// Reverse mappings present at both D-side xTRs after the run.
    pub reverse_entries_complete: bool,
    /// PCE database entries after the run.
    pub db_entries: usize,
}

impl ReverseResult {
    /// The typed result section.
    pub fn section(&self) -> Section {
        let mut s = Section::new(
            "reverse",
            "E7: reverse-mapping completion after first packet at ETR",
            &["milestone", "t_ms", "delta_from_decap_ms"],
        );
        let base = self.t_first_decap;
        for (label, at) in [
            ("first decap at ETR", self.t_first_decap),
            ("local return-flow install", self.t_local_install),
            ("peer xTR install (multicast)", self.t_peer_install),
            ("PCE database update", self.t_db_update),
        ] {
            s.row(vec![
                Cell::str(label),
                Cell::f64(at.as_ms_f64(), 3),
                Cell::f64(at.saturating_sub(base).as_ms_f64(), 3),
            ]);
        }
        s.row(vec![
            Cell::str("concurrent flows"),
            Cell::usize(self.concurrent_flows),
            Cell::empty(),
        ]);
        s.row(vec![
            Cell::str("reverse entries complete"),
            Cell::bool(self.reverse_entries_complete),
            Cell::empty(),
        ]);
        s.row(vec![
            Cell::str("PCE db entries"),
            Cell::usize(self.db_entries),
            Cell::empty(),
        ]);
        s
    }

    /// Render the table.
    pub fn table(&self) -> Table {
        self.section().table()
    }
}

/// Run the experiment with `concurrent_flows` flows.
pub fn run_reverse(concurrent_flows: usize, seed: u64) -> ReverseResult {
    let n = concurrent_flows.max(1);
    let starts: Vec<Ns> = (0..n).map(|i| Ns::from_ms(50 * i as u64)).collect();
    let mut world = ScenarioSpec::fig1(CpKind::Pce)
        .with(|s| {
            s.set_dest_count(n.max(4));
            s.set_flows(flow_script(
                &starts,
                n.max(4),
                FlowMode::Udp {
                    packets: 4,
                    interval: Ns::from_ms(2),
                    size: 300,
                },
            ));
        })
        .build(seed);
    world.sim.trace.enable();
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(60));

    let trace = &world.sim.trace;
    let t_first_decap = trace.time_of("decap 100.0.0.5").expect("decap traced");
    let t_local_install = trace
        .find("installed flow 101.")
        .first()
        .map(|e| e.t)
        .expect("local install traced");
    // The peer install is the first "installed flow 101." event at a node
    // other than the decapsulating one.
    let decap_node = trace
        .first("decap 100.0.0.5")
        .map(|e| e.node)
        .expect("decap node");
    let t_peer_install = trace
        .find("installed flow 101.")
        .iter()
        .find(|e| e.node != decap_node)
        .map(|e| e.t)
        .expect("peer install traced");
    let t_db_update = trace.time_of("database updated").expect("db update traced");

    // Verify every flow's reverse entry exists at both D-side xTRs.
    let host_s_addr = world.client().host_addr;
    let dest_of_flow: Vec<_> = world.records().iter().filter_map(|r| r.dest).collect();
    let mut complete = !dest_of_flow.is_empty();
    for &x in &world.site("D").xtrs {
        let xtr = world.sim.node_ref::<Xtr>(x);
        for dest in &dest_of_flow {
            if !xtr.flows.contains_key(&(*dest, host_s_addr)) {
                complete = false;
            }
        }
    }
    let pce_d = world.site("D").pce.expect("pce world");
    let db_entries = world.sim.node_ref::<Pce>(pce_d).db.len();

    ReverseResult {
        t_first_decap,
        t_local_install,
        t_peer_install,
        t_db_update,
        concurrent_flows: n,
        reverse_entries_complete: complete,
        db_entries,
    }
}

/// The registry entry for E7 (runs with 4 concurrent flows).
pub struct E7Reverse;

impl crate::experiments::Experiment for E7Reverse {
    fn name(&self) -> &'static str {
        "e7"
    }
    fn title(&self) -> &'static str {
        "Two-way (reverse) mapping completion"
    }
    fn run(&self, seed: u64, _jobs: usize) -> ExpReport {
        // A single cell: nothing to fan out.
        ExpReport::new(self.name(), self.title()).with_section(run_reverse(4, seed).section())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_flow_completes_reverse() {
        let r = run_reverse(1, 1);
        assert!(r.t_local_install <= r.t_peer_install);
        assert!(r.t_peer_install >= r.t_first_decap);
        assert!(r.reverse_entries_complete, "{r:?}");
        // Sync crosses the site LAN: well under 1 ms after decap.
        let delta = r.t_peer_install.saturating_sub(r.t_first_decap);
        assert!(delta < Ns::from_ms(1), "peer sync took {delta}");
        assert!(r.db_entries >= 1);
    }

    #[test]
    fn concurrent_flows_all_complete() {
        let r = run_reverse(6, 2);
        assert!(r.reverse_entries_complete, "{r:?}");
        assert!(r.db_entries >= 6, "db has {} entries", r.db_entries);
    }
}
