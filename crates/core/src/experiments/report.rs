//! The unified experiment interface: [`Experiment`] (name + run) and
//! [`ExpReport`] (typed rows + printable tables + JSON).
//!
//! Every experiment produces an `ExpReport` made of [`Section`]s. A
//! section is a titled grid whose cells carry **both** the exact table
//! text (so renderings stay byte-identical to the historical tables)
//! and a typed [`Value`] (so JSON emission keeps numbers as numbers).

use simstats::Table;
use std::fmt::Write as _;

/// A typed cell value, used for JSON serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A string.
    Str(String),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (emitted raw, full precision).
    Float(f64),
    /// A boolean.
    Bool(bool),
    /// Missing / not applicable.
    Null,
}

/// One table cell: the rendered text plus the typed value behind it.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Exact text shown in the table rendering.
    pub text: String,
    /// Typed value for JSON.
    pub value: Value,
}

impl Cell {
    /// A string cell.
    pub fn str(s: impl Into<String>) -> Self {
        let text = s.into();
        Self {
            value: Value::Str(text.clone()),
            text,
        }
    }

    /// An unsigned-integer cell.
    pub fn u64(v: u64) -> Self {
        Self {
            text: v.to_string(),
            value: Value::UInt(v),
        }
    }

    /// A `usize` cell.
    pub fn usize(v: usize) -> Self {
        Self::u64(v as u64)
    }

    /// A float cell rendered with `prec` decimals.
    pub fn f64(v: f64, prec: usize) -> Self {
        Self {
            text: format!("{v:.prec$}"),
            value: Value::Float(v),
        }
    }

    /// An optional float: `None` renders as `placeholder` and
    /// serializes as JSON `null`.
    pub fn opt_f64(v: Option<f64>, prec: usize, placeholder: &str) -> Self {
        match v {
            Some(v) => Self::f64(v, prec),
            None => Self {
                text: placeholder.to_string(),
                value: Value::Null,
            },
        }
    }

    /// A boolean cell (renders `true` / `false`).
    pub fn bool(v: bool) -> Self {
        Self {
            text: v.to_string(),
            value: Value::Bool(v),
        }
    }

    /// An empty cell (renders as nothing, serializes as `null`).
    pub fn empty() -> Self {
        Self {
            text: String::new(),
            value: Value::Null,
        }
    }
}

/// One titled result grid of an experiment.
#[derive(Debug, Clone)]
pub struct Section {
    /// Stable machine key (`"drops"`, `"ablation_push"`, …).
    pub key: String,
    /// Human title (becomes the table title).
    pub title: String,
    /// Column names.
    pub columns: Vec<String>,
    /// Typed rows.
    pub rows: Vec<Vec<Cell>>,
}

impl Section {
    /// An empty section.
    pub fn new(key: &str, title: &str, columns: &[&str]) -> Self {
        Self {
            key: key.to_string(),
            title: title.to_string(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a typed row.
    pub fn row(&mut self, cells: Vec<Cell>) -> &mut Self {
        self.rows.push(cells);
        self
    }

    /// Render as a plain-text [`Table`].
    pub fn table(&self) -> Table {
        let cols: Vec<&str> = self.columns.iter().map(String::as_str).collect();
        let mut t = Table::new(&self.title, &cols);
        for row in &self.rows {
            let cells: Vec<String> = row.iter().map(|c| c.text.clone()).collect();
            t.row(&cells);
        }
        t
    }
}

/// The result of one experiment run: typed sections with table and
/// JSON renderings.
///
/// ```
/// use pcelisp::experiments::{Cell, ExpReport, Section};
///
/// let mut s = Section::new("demo", "demo section", &["cp", "drops"]);
/// s.row(vec![Cell::str("pce"), Cell::u64(0)]);
/// let report = ExpReport::new("e0", "demo experiment").with_section(s);
/// assert!(report.is_complete());
/// assert!(report.tables()[0].render().contains("pce"));
/// assert!(report.to_json().contains("[\"pce\",0]"));
/// ```
#[derive(Debug, Clone)]
pub struct ExpReport {
    /// Experiment key (`"e1"` … `"e10"`).
    pub name: String,
    /// One-line experiment title.
    pub title: String,
    /// Result sections (≥ 1 for a complete report).
    pub sections: Vec<Section>,
}

impl ExpReport {
    /// An empty report.
    pub fn new(name: &str, title: &str) -> Self {
        Self {
            name: name.to_string(),
            title: title.to_string(),
            sections: Vec::new(),
        }
    }

    /// Add a section, builder-style.
    pub fn with_section(mut self, section: Section) -> Self {
        self.sections.push(section);
        self
    }

    /// All sections as printable tables, in order.
    pub fn tables(&self) -> Vec<Table> {
        self.sections.iter().map(Section::table).collect()
    }

    /// Print every section table to stdout, blank-line separated.
    pub fn print(&self) {
        for (i, t) in self.tables().iter().enumerate() {
            if i > 0 {
                println!();
            }
            t.print();
        }
    }

    /// A report is complete when it has at least one section and every
    /// section has at least one row (the CI smoke gate).
    pub fn is_complete(&self) -> bool {
        !self.sections.is_empty() && self.sections.iter().all(|s| !s.rows.is_empty())
    }

    /// Serialize to a JSON object:
    /// `{"name", "title", "sections": [{"key","title","columns","rows"}]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push('{');
        let _ = write!(
            out,
            "\"name\":{},\"title\":{},\"sections\":[",
            json_str(&self.name),
            json_str(&self.title)
        );
        for (i, s) in self.sections.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"key\":{},\"title\":{},\"columns\":[",
                json_str(&s.key),
                json_str(&s.title)
            );
            for (j, c) in s.columns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&json_str(c));
            }
            out.push_str("],\"rows\":[");
            for (j, row) in s.rows.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('[');
                for (k, cell) in row.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    out.push_str(&json_value(&cell.value));
                }
                out.push(']');
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

/// JSON-escape a string (quotes included).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Str(s) => json_str(s),
        Value::UInt(n) => n.to_string(),
        Value::Int(n) => n.to_string(),
        Value::Float(f) if f.is_finite() => {
            // Guarantee a float-typed JSON literal.
            let s = format!("{f}");
            if s.contains('.') || s.contains('e') || s.contains("inf") {
                s
            } else {
                format!("{s}.0")
            }
        }
        Value::Float(_) | Value::Null => "null".to_string(),
        Value::Bool(b) => b.to_string(),
    }
}

/// A runnable, registry-listed experiment.
///
/// Implementations are enumerated by [`crate::experiments::registry`]
/// and selected by name through `exp_all --only`. Runs are pure
/// functions of the seed (DESIGN.md §2) — `jobs` only sets how many
/// worker threads a grid-shaped experiment may fan its cells across
/// (DESIGN.md §8; `0` = auto), never what the report contains — so a
/// report regenerates byte-identically at any job count:
///
/// ```
/// use pcelisp::experiments::{Cell, ExpReport, Experiment, Section};
///
/// struct Demo;
/// impl Experiment for Demo {
///     fn name(&self) -> &'static str { "demo" }
///     fn title(&self) -> &'static str { "a demo experiment" }
///     fn run(&self, seed: u64, _jobs: usize) -> ExpReport {
///         let mut s = Section::new("k", "seeded", &["seed"]);
///         s.row(vec![Cell::u64(seed)]);
///         ExpReport::new(self.name(), self.title()).with_section(s)
///     }
/// }
///
/// let report = Demo.run(7, 1);
/// assert_eq!(report.to_json(), Demo.run(7, 8).to_json());
/// ```
pub trait Experiment {
    /// Stable key used by `exp_all --only` (`"e1"` … `"e11"`).
    fn name(&self) -> &'static str;
    /// One-line description for `--list` output.
    fn title(&self) -> &'static str;
    /// Run the experiment at the given seed on up to `jobs` worker
    /// threads (`0` = auto; see [`crate::experiments::sweep::resolve_jobs`]).
    /// The report is byte-identical for every `jobs` value.
    fn run(&self, seed: u64, jobs: usize) -> ExpReport;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_report() -> ExpReport {
        let mut s = Section::new("rows", "demo section", &["cp", "drops", "ratio", "ok"]);
        s.row(vec![
            Cell::str("pce"),
            Cell::u64(0),
            Cell::f64(1.0, 3),
            Cell::bool(true),
        ]);
        s.row(vec![
            Cell::str("lisp \"drop\""),
            Cell::u64(12),
            Cell::opt_f64(None, 1, "FAILED"),
            Cell::bool(false),
        ]);
        ExpReport::new("e0", "demo").with_section(s)
    }

    #[test]
    fn table_renders_cell_text() {
        let r = demo_report();
        let rendered = r.tables()[0].render();
        assert!(rendered.contains("== demo section =="));
        assert!(rendered.contains("1.000"));
        assert!(rendered.contains("FAILED"));
    }

    #[test]
    fn json_is_typed_and_escaped() {
        let json = demo_report().to_json();
        assert!(json.contains("\"name\":\"e0\""));
        assert!(json.contains("[\"pce\",0,1.0,true]"), "{json}");
        assert!(json.contains("\"lisp \\\"drop\\\"\""), "{json}");
        assert!(
            json.contains(",null,"),
            "None must serialize as null: {json}"
        );
    }

    #[test]
    fn completeness_gate() {
        assert!(demo_report().is_complete());
        let empty = ExpReport::new("x", "no sections");
        assert!(!empty.is_complete());
        let hollow =
            ExpReport::new("x", "empty section").with_section(Section::new("k", "t", &["a"]));
        assert!(!hollow.is_complete());
    }

    #[test]
    fn float_json_always_has_decimal_point() {
        let mut s = Section::new("k", "t", &["v"]);
        s.row(vec![Cell::f64(2.0, 1)]);
        let json = ExpReport::new("e", "t").with_section(s).to_json();
        assert!(json.contains("[2.0]"), "{json}");
    }
}
