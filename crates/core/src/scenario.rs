//! Scenario builders reproducing the paper's Fig. 1 world.
//!
//! Two ASes: source domain **S** (EIDs `100/8`, providers **A** `10/8`
//! and **B** `11/8`) and destination domain **D** (EIDs `101/8`,
//! providers **X** `12/8` and **Y** `13/8`) — the exact prefixes of the
//! figure. A core router stands in for the Internet; a three-level DNS
//! hierarchy (root, `example` TLD, `d.example` authoritative inside
//! domain D) provides `T_DNS`; any of the competing control planes can be
//! installed by [`CpKind`].

use crate::hosts::{FlowMode, FlowSpec, ServerHost, TrafficHost};
use crate::pce::{Pce, PceConfig};
use inet::stack::peek_dst;
use inet::{LpmTrie, Prefix, Router};
use ircte::Provider;
use lispdp::{CpMode, MissPolicy, Xtr, XtrConfig};
use lispwire::dnswire::Name;
use lispwire::Ipv4Address;
use mapsys::alt::linear_chain;
use mapsys::api::{MappingDb, SiteEntry};
use mapsys::{ConsNode, MapResolver, NerdAuthority};
use netsim::{Ctx, LazyCounter, LinkCfg, Node, NodeId, Ns, PortId, Sim};
use simdns::zone::{Zone, ZoneStore};
use simdns::{AuthServer, Resolver, ResolverConfig};
use std::any::Any;
use std::collections::HashMap;

/// Which control plane runs in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CpKind {
    /// No LISP at all: EIDs are globally routable (today's Internet, the
    /// `T_DNS + 2·OWD + OWD` baseline of §1).
    NoLisp,
    /// Vanilla LISP, Map-Resolver pull, packets dropped on miss.
    LispDrop,
    /// Vanilla LISP, packets queued on miss.
    LispQueue,
    /// Vanilla LISP, data carried over the control plane on miss.
    LispDataCp,
    /// LISP+ALT with an overlay chain of the given length.
    Alt {
        /// Number of overlay routers between ITR and ETR side.
        hops: usize,
    },
    /// LISP-CONS with the given number of interior CDR levels.
    Cons {
        /// Interior depth (0 = the two CARs share one root CDR).
        cdr_depth: usize,
    },
    /// NERD pushed database.
    Nerd,
    /// The paper's PCE-based control plane.
    Pce,
}

impl CpKind {
    /// Report label.
    pub fn label(&self) -> String {
        match self {
            CpKind::NoLisp => "no-lisp".into(),
            CpKind::LispDrop => "lisp-drop".into(),
            CpKind::LispQueue => "lisp-queue".into(),
            CpKind::LispDataCp => "lisp-data-cp".into(),
            CpKind::Alt { hops } => format!("lisp-alt-{hops}"),
            CpKind::Cons { cdr_depth } => format!("lisp-cons-{cdr_depth}"),
            CpKind::Nerd => "nerd".into(),
            CpKind::Pce => "pce".into(),
        }
    }

    /// All comparison variants used by the experiment sweeps.
    pub fn all() -> Vec<CpKind> {
        vec![
            CpKind::NoLisp,
            CpKind::LispDrop,
            CpKind::LispQueue,
            CpKind::LispDataCp,
            CpKind::Alt { hops: 4 },
            CpKind::Cons { cdr_depth: 1 },
            CpKind::Nerd,
            CpKind::Pce,
        ]
    }
}

/// A router with per-flow `(src, dst)` port overrides on top of LPM —
/// the site-internal routing knob that picks the egress border router
/// ("PCE_S can … move part of its internal traffic").
pub struct FlowRouter {
    routes: LpmTrie<PortId>,
    overrides: HashMap<(Ipv4Address, Ipv4Address), PortId>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub dropped: u64,
    ctr_dropped: LazyCounter,
}

impl FlowRouter {
    /// An empty flow router.
    pub fn new() -> Self {
        Self {
            routes: LpmTrie::new(),
            overrides: HashMap::new(),
            forwarded: 0,
            dropped: 0,
            ctr_dropped: LazyCounter::new(),
        }
    }

    /// Install a prefix route.
    pub fn add_route(&mut self, prefix: Prefix, port: PortId) -> &mut Self {
        self.routes.insert(prefix, port);
        self
    }

    /// Install the default route.
    pub fn set_default_route(&mut self, port: PortId) -> &mut Self {
        self.add_route(Prefix::DEFAULT, port)
    }

    /// Pin a flow to a port (TE override).
    pub fn pin_flow(&mut self, src: Ipv4Address, dst: Ipv4Address, port: PortId) {
        self.overrides.insert((src, dst), port);
    }

    /// Remove a pin.
    pub fn unpin_flow(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.overrides.remove(&(src, dst));
    }
}

impl Default for FlowRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Node for FlowRouter {
    fn on_packet(&mut self, ctx: &mut Ctx<'_>, _port: PortId, bytes: Vec<u8>) {
        // Site-internal hop: no TTL work (modelled as L2/IGP forwarding).
        let (src, dst) = match (inet::stack::peek_src(&bytes), peek_dst(&bytes)) {
            (Ok(s), Ok(d)) => (s, d),
            _ => {
                self.dropped += 1;
                return;
            }
        };
        let port = self
            .overrides
            .get(&(src, dst))
            .copied()
            .or_else(|| self.routes.lookup_value(dst).copied());
        match port {
            Some(p) => {
                self.forwarded += 1;
                ctx.send(p, bytes);
            }
            None => {
                self.dropped += 1;
                self.ctr_dropped.add(ctx, "flowrouter.dropped", 1);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// Well-known addresses of the Fig. 1 world.
pub mod addrs {
    use lispwire::Ipv4Address;

    /// `E_S`, the source end-host.
    pub const HOST_S: Ipv4Address = Ipv4Address::new(100, 0, 0, 5);
    /// Base for `E_D` server EIDs (`host-i.d.example` = base + 10 + i).
    pub const HOST_D_BASE: Ipv4Address = Ipv4Address::new(101, 0, 0, 7);
    /// Border router on provider A.
    pub const XTR_A: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    /// Border router on provider B.
    pub const XTR_B: Ipv4Address = Ipv4Address::new(11, 0, 0, 1);
    /// Border router on provider X.
    pub const XTR_X: Ipv4Address = Ipv4Address::new(12, 0, 0, 1);
    /// Border router on provider Y.
    pub const XTR_Y: Ipv4Address = Ipv4Address::new(13, 0, 0, 1);
    /// `DNS_S`, the domain-S recursive resolver.
    pub const DNS_S: Ipv4Address = Ipv4Address::new(10, 0, 0, 53);
    /// `DNS_D`, the domain-D authoritative server.
    pub const DNS_D: Ipv4Address = Ipv4Address::new(12, 0, 0, 53);
    /// `PCE_S`.
    pub const PCE_S: Ipv4Address = Ipv4Address::new(10, 0, 0, 200);
    /// `PCE_D`.
    pub const PCE_D: Ipv4Address = Ipv4Address::new(12, 0, 0, 200);
    /// DNS root server.
    pub const ROOT: Ipv4Address = Ipv4Address::new(8, 0, 0, 53);
    /// `example` TLD server.
    pub const TLD: Ipv4Address = Ipv4Address::new(9, 0, 0, 53);
    /// Map-resolver (vanilla pull).
    pub const MAP_RESOLVER: Ipv4Address = Ipv4Address::new(8, 0, 0, 10);
    /// NERD authority.
    pub const NERD: Ipv4Address = Ipv4Address::new(8, 0, 0, 20);
}

/// Tunables of the builder.
#[derive(Debug, Clone)]
pub struct Fig1Params {
    /// One-way delay of each provider↔core link.
    pub provider_owd: Ns,
    /// One-way delay of DNS-infrastructure links (root/TLD/MR/… ↔ core).
    pub infra_owd: Ns,
    /// Provider link bandwidth (bps), indexable per provider A,B,X,Y.
    pub provider_bw: [u64; 4],
    /// Map-cache TTL used by vanilla xTRs for their *replies* (minutes).
    pub mapping_ttl_minutes: u16,
    /// Number of `host-i.d.example` names (distinct destination EIDs).
    pub dest_count: usize,
    /// Flow script for `E_S`.
    pub flows: Vec<FlowSpec>,
    /// PCE precompute claim on/off (ablation A2).
    pub pce_precompute: bool,
    /// PCE pushes to all ITRs (ablation A1 turns off).
    pub pce_push_all: bool,
    /// Random drop probability injected on every provider/infra WAN link
    /// (failure-injection experiments).
    pub wan_drop_prob: f64,
    /// Register host-granular (/32) mappings instead of one site prefix —
    /// the regime where cache aging and cold misses are visible (E6).
    pub fine_grained_mappings: bool,
}

impl Default for Fig1Params {
    fn default() -> Self {
        Self {
            provider_owd: Ns::from_ms(30),
            infra_owd: Ns::from_ms(15),
            provider_bw: [1_000_000_000; 4],
            mapping_ttl_minutes: 60,
            dest_count: 8,
            flows: vec![FlowSpec {
                start: Ns::ZERO,
                qname: Name::parse_str("host-0.d.example").expect("valid"),
                mode: FlowMode::Tcp {
                    packets: 4,
                    interval: Ns::from_ms(1),
                    size: 200,
                },
            }],
            pce_precompute: true,
            pce_push_all: true,
            wan_drop_prob: 0.0,
            fine_grained_mappings: false,
        }
    }
}

/// The built world: the simulation plus every handle experiments need.
pub struct Fig1World {
    /// The simulation.
    pub sim: Sim,
    /// Control plane installed.
    pub cp: CpKind,
    /// `E_S`.
    pub host_s: NodeId,
    /// `E_D` (serves all destination EIDs).
    pub host_d: NodeId,
    /// Border routers (A, B, X, Y); `None` under [`CpKind::NoLisp`].
    pub xtrs: Option<[NodeId; 4]>,
    /// `DNS_S` resolver node.
    pub resolver_s: NodeId,
    /// `DNS_D` authoritative node.
    pub dns_d: NodeId,
    /// PCE nodes (S, D) when `cp == Pce`.
    pub pces: Option<(NodeId, NodeId)>,
    /// Site routers (S, D).
    pub site_routers: (NodeId, NodeId),
    /// The core "Internet" router.
    pub core: NodeId,
    /// Link indices of the provider links (A, B, X, Y) for utilisation
    /// accounting via `sim.link_stats`.
    pub provider_links: [usize; 4],
    /// Destination EID of `host-i.d.example`.
    pub dest_eids: Vec<Ipv4Address>,
    /// Site-router ports toward (xtr_a, xtr_b) at S — for egress pins.
    pub site_s_egress_ports: Option<(PortId, PortId)>,
    /// Map-resolver node (pull variants).
    pub mr_node: Option<NodeId>,
    /// NERD authority node.
    pub nerd_node: Option<NodeId>,
    /// ALT overlay nodes.
    pub alt_nodes: Vec<NodeId>,
    /// CONS overlay nodes (CAR_S, CAR_D, then CDRs).
    pub cons_nodes: Vec<NodeId>,
}

impl Fig1World {
    /// Schedule the start of every scripted flow at its spec time.
    pub fn schedule_all_flows(&mut self) {
        let starts: Vec<(usize, Ns)> = {
            let host = self.sim.node_mut::<TrafficHost>(self.host_s);
            host.flows
                .iter()
                .enumerate()
                .map(|(i, f)| (i, f.start))
                .collect()
        };
        for (i, at) in starts {
            self.sim
                .schedule_timer(self.host_s, at, TrafficHost::start_token(i));
        }
    }

    /// Start one flow now.
    pub fn start_flow(&mut self, i: usize) {
        self.sim
            .schedule_timer(self.host_s, Ns::ZERO, TrafficHost::start_token(i));
    }

    /// The flow records measured so far.
    pub fn records(&mut self) -> Vec<crate::hosts::FlowRecord> {
        self.sim
            .node_ref::<TrafficHost>(self.host_s)
            .records
            .clone()
    }

    /// Data packets received by the destination host (UDP mode).
    pub fn server_udp_received(&mut self) -> u64 {
        self.sim.node_ref::<ServerHost>(self.host_d).total_udp()
    }

    /// Sum of miss-drops across all xTRs.
    pub fn total_miss_drops(&mut self) -> u64 {
        match self.xtrs {
            Some(xtrs) => xtrs
                .iter()
                .map(|&x| self.sim.node_ref::<Xtr>(x).stats.miss_drops)
                .sum(),
            None => 0,
        }
    }

    /// Bytes carried on each provider link (A, B, X, Y), both directions.
    pub fn provider_bytes(&self) -> [u64; 4] {
        let mut out = [0u64; 4];
        for (i, &l) in self.provider_links.iter().enumerate() {
            out[i] = self.sim.link_stats(l, 0).tx_bytes + self.sim.link_stats(l, 1).tx_bytes;
        }
        out
    }

    /// Bytes arriving INTO each domain per provider link (A, B, X, Y):
    /// direction core→xtr (inbound TE accounting).
    pub fn provider_inbound_bytes(&self) -> [u64; 4] {
        // Links were created as connect(xtr, core): dir 0 = xtr→core
        // (outbound), dir 1 = core→xtr (inbound).
        let mut out = [0u64; 4];
        for (i, &l) in self.provider_links.iter().enumerate() {
            out[i] = self.sim.link_stats(l, 1).tx_bytes;
        }
        out
    }
}

/// The builder.
pub struct Fig1Builder {
    cp: CpKind,
    params: Fig1Params,
}

impl Fig1Builder {
    /// A builder for the given control plane with default parameters.
    pub fn new(cp: CpKind) -> Self {
        Self {
            cp,
            params: Fig1Params::default(),
        }
    }

    /// Override the parameters.
    pub fn params(mut self, params: Fig1Params) -> Self {
        self.params = params;
        self
    }

    /// Mutate the parameters in place.
    pub fn with_params(mut self, f: impl FnOnce(&mut Fig1Params)) -> Self {
        f(&mut self.params);
        self
    }

    fn eid_space() -> Vec<Prefix> {
        vec![Prefix::new(Ipv4Address::new(100, 0, 0, 0), 7)] // 100/8 + 101/8
    }

    fn dest_eid(i: usize) -> Ipv4Address {
        Ipv4Address::new(101, 0, 0, 10u8.wrapping_add((i % 200) as u8))
    }

    /// Construct the world.
    pub fn build(self, seed: u64) -> Fig1World {
        let p = &self.params;
        let cp = self.cp;
        let mut sim = Sim::new(seed);

        let dest_eids: Vec<Ipv4Address> = (0..p.dest_count).map(Self::dest_eid).collect();

        // ---- DNS zone data -------------------------------------------------
        let mut root_zone = Zone::new(Name::root());
        root_zone.delegate(
            Name::parse_str("example").expect("valid"),
            vec![(Name::parse_str("ns.example").expect("valid"), addrs::TLD)],
            86_400,
        );
        let mut root_store = ZoneStore::new();
        root_store.add_zone(root_zone);

        let mut tld_zone = Zone::new(Name::parse_str("example").expect("valid"));
        tld_zone.delegate(
            Name::parse_str("d.example").expect("valid"),
            vec![(
                Name::parse_str("ns.d.example").expect("valid"),
                addrs::DNS_D,
            )],
            86_400,
        );
        let mut tld_store = ZoneStore::new();
        tld_store.add_zone(tld_zone);

        let mut d_zone = Zone::new(Name::parse_str("d.example").expect("valid"));
        d_zone.add_a(
            Name::parse_str("host.d.example").expect("valid"),
            addrs::HOST_D_BASE,
            300,
        );
        for (i, eid) in dest_eids.iter().enumerate() {
            d_zone.add_a(
                Name::parse_str(&format!("host-{i}.d.example")).expect("valid"),
                *eid,
                300,
            );
        }
        let mut d_store = ZoneStore::new();
        d_store.add_zone(d_zone);

        // ---- Nodes ----------------------------------------------------------
        let core = sim.add_node("core", Box::new(Router::new()));
        let site_s = sim.add_node("site-S", Box::new(FlowRouter::new()));
        let site_d = sim.add_node("site-D", Box::new(FlowRouter::new()));

        let host_s = sim.add_node(
            "E_S",
            Box::new(TrafficHost::new(
                addrs::HOST_S,
                addrs::DNS_S,
                p.flows.clone(),
            )),
        );
        let host_d = sim.add_node("E_D", Box::new(ServerHost::new(addrs::HOST_D_BASE)));

        let mut resolver_cfg = ResolverConfig::default();
        if cp == CpKind::Pce {
            resolver_cfg.ipc_notify = Some(addrs::PCE_S);
        }
        let resolver_s = sim.add_node(
            "DNS_S",
            Box::new(Resolver::with_config(
                addrs::DNS_S,
                vec![addrs::ROOT],
                resolver_cfg,
            )),
        );
        let dns_d = sim.add_node("DNS_D", Box::new(AuthServer::new(addrs::DNS_D, d_store)));
        let root = sim.add_node(
            "dns-root",
            Box::new(AuthServer::new(addrs::ROOT, root_store)),
        );
        let tld = sim.add_node("dns-tld", Box::new(AuthServer::new(addrs::TLD, tld_store)));

        // ---- Hosts & site wiring ---------------------------------------------
        let (_, sp_host_s) = sim.connect(host_s, site_s, LinkCfg::lan());
        let (_, sp_host_d) = sim.connect(host_d, site_d, LinkCfg::lan());

        // DNS attachment: behind the PCE bump when cp == Pce.
        let (pces, sp_dns_s, sp_dns_d) = if cp == CpKind::Pce {
            let providers_s = vec![
                Provider::new("A", addrs::XTR_A, p.provider_bw[0] as f64 / 1e6),
                Provider::new("B", addrs::XTR_B, p.provider_bw[1] as f64 / 1e6),
            ];
            let providers_d = vec![
                Provider::new("X", addrs::XTR_X, p.provider_bw[2] as f64 / 1e6),
                Provider::new("Y", addrs::XTR_Y, p.provider_bw[3] as f64 / 1e6),
            ];
            let mut cfg_s = PceConfig::new(
                addrs::PCE_S,
                vec![Prefix::new(Ipv4Address::new(100, 0, 0, 0), 8)],
                vec![addrs::XTR_A, addrs::XTR_B],
                providers_s,
            );
            cfg_s.precompute = p.pce_precompute;
            cfg_s.push_to_all_itrs = p.pce_push_all;
            cfg_s.mapping_ttl_minutes = p.mapping_ttl_minutes;
            let mut cfg_d = PceConfig::new(
                addrs::PCE_D,
                vec![Prefix::new(Ipv4Address::new(101, 0, 0, 0), 8)],
                vec![addrs::XTR_X, addrs::XTR_Y],
                providers_d,
            );
            cfg_d.precompute = p.pce_precompute;
            cfg_d.push_to_all_itrs = p.pce_push_all;
            cfg_d.mapping_ttl_minutes = p.mapping_ttl_minutes;

            let pce_s = sim.add_node("PCE_S", Box::new(Pce::new(cfg_s)));
            let pce_d = sim.add_node("PCE_D", Box::new(Pce::new(cfg_d)));
            // PCE port 0 = DNS side, port 1 = network side.
            sim.connect(pce_s, resolver_s, LinkCfg::ipc());
            let (_, sp_pce_s) = sim.connect(pce_s, site_s, LinkCfg::lan());
            sim.connect(pce_d, dns_d, LinkCfg::ipc());
            let (_, sp_pce_d) = sim.connect(pce_d, site_d, LinkCfg::lan());
            (Some((pce_s, pce_d)), sp_pce_s, sp_pce_d)
        } else {
            let (_, sp_dns_s) = sim.connect(resolver_s, site_s, LinkCfg::lan());
            let (_, sp_dns_d) = sim.connect(dns_d, site_d, LinkCfg::lan());
            (None, sp_dns_s, sp_dns_d)
        };

        // ---- Border: xTRs or plain routing ------------------------------------
        let eid_space = Self::eid_space();
        let s_prefix = Prefix::new(Ipv4Address::new(100, 0, 0, 0), 8);
        let d_prefix = Prefix::new(Ipv4Address::new(101, 0, 0, 0), 8);
        let internal_s = vec![
            Prefix::new(Ipv4Address::new(10, 0, 0, 0), 24),
            Prefix::new(Ipv4Address::new(11, 0, 0, 0), 24),
        ];
        let internal_d = vec![
            Prefix::new(Ipv4Address::new(12, 0, 0, 0), 24),
            Prefix::new(Ipv4Address::new(13, 0, 0, 0), 24),
        ];

        let provider_links;
        let mut xtrs_opt = None;
        let mut site_s_egress_ports = None;
        let mut mr_node = None;
        let mut nerd_node = None;
        let mut alt_nodes = Vec::new();
        let mut cons_nodes = Vec::new();

        if cp == CpKind::NoLisp {
            // Sites connect straight to the core; EIDs globally routable.
            let l_a = sim.link_count();
            let (sp_up_s, cp_s) = sim.connect(
                site_s,
                core,
                LinkCfg::wan(p.provider_owd)
                    .with_bandwidth(p.provider_bw[0])
                    .with_drop_prob(p.wan_drop_prob),
            );
            let l_x = sim.link_count();
            let (sp_up_d, cp_d) = sim.connect(
                site_d,
                core,
                LinkCfg::wan(p.provider_owd)
                    .with_bandwidth(p.provider_bw[2])
                    .with_drop_prob(p.wan_drop_prob),
            );
            provider_links = [l_a, l_a, l_x, l_x];
            {
                let r = sim.node_mut::<Router>(core);
                r.add_route(s_prefix, cp_s);
                r.add_route(Prefix::new(Ipv4Address::new(10, 0, 0, 0), 8), cp_s);
                r.add_route(d_prefix, cp_d);
                r.add_route(Prefix::new(Ipv4Address::new(12, 0, 0, 0), 8), cp_d);
            }
            {
                let r = sim.node_mut::<FlowRouter>(site_s);
                r.add_route(Prefix::host(addrs::HOST_S), sp_host_s);
                r.add_route(Prefix::host(addrs::DNS_S), sp_dns_s);
                r.set_default_route(sp_up_s);
            }
            {
                let r = sim.node_mut::<FlowRouter>(site_d);
                r.add_route(d_prefix, sp_host_d);
                r.add_route(Prefix::host(addrs::DNS_D), sp_dns_d);
                r.set_default_route(sp_up_d);
            }
        } else {
            // xTR modes per control plane.
            let mode_s: CpMode;
            let mode_d: CpMode;
            let miss: MissPolicy = match cp {
                CpKind::LispQueue => MissPolicy::Queue { max_packets: 64 },
                CpKind::LispDataCp => MissPolicy::DataOverCp {
                    extra_latency: Ns::from_ms(40),
                },
                _ => MissPolicy::Drop,
            };
            match cp {
                CpKind::Pce => {
                    mode_s = CpMode::Pce;
                    mode_d = CpMode::Pce;
                }
                CpKind::Nerd => {
                    mode_s = CpMode::PushDb;
                    mode_d = CpMode::PushDb;
                }
                CpKind::Alt { .. }
                | CpKind::Cons { .. }
                | CpKind::LispDrop
                | CpKind::LispQueue
                | CpKind::LispDataCp => {
                    // Resolver address fixed below per variant.
                    mode_s = CpMode::Pull {
                        map_resolver: Some(addrs::MAP_RESOLVER),
                    };
                    mode_d = CpMode::Pull {
                        map_resolver: Some(addrs::MAP_RESOLVER),
                    };
                }
                CpKind::NoLisp => unreachable!(),
            }

            let make_cfg = |rloc: Ipv4Address,
                            site: Prefix,
                            mode: CpMode,
                            internal: &[Prefix],
                            peers: Vec<Ipv4Address>,
                            pced: Option<Ipv4Address>| {
                let mut cfg = XtrConfig::new(rloc, site, eid_space.clone(), mode);
                cfg.miss_policy = miss;
                cfg.internal_plain_prefixes = internal.to_vec();
                cfg.reverse_sync_peers = peers;
                cfg.pced_addr = pced;
                cfg.reply_ttl_minutes = p.mapping_ttl_minutes;
                cfg.reply_host_granularity = p.fine_grained_mappings;
                cfg
            };

            let pce_s_db = if cp == CpKind::Pce {
                Some(addrs::PCE_S)
            } else {
                None
            };
            let pce_d_db = if cp == CpKind::Pce {
                Some(addrs::PCE_D)
            } else {
                None
            };

            let xtr_a = sim.add_node(
                "xTR-A",
                Box::new(Xtr::new(make_cfg(
                    addrs::XTR_A,
                    s_prefix,
                    mode_s.clone(),
                    &internal_s,
                    vec![addrs::XTR_B],
                    pce_s_db,
                ))),
            );
            let xtr_b = sim.add_node(
                "xTR-B",
                Box::new(Xtr::new(make_cfg(
                    addrs::XTR_B,
                    s_prefix,
                    mode_s.clone(),
                    &internal_s,
                    vec![addrs::XTR_A],
                    pce_s_db,
                ))),
            );
            let xtr_x = sim.add_node(
                "xTR-X",
                Box::new(Xtr::new(make_cfg(
                    addrs::XTR_X,
                    d_prefix,
                    mode_d.clone(),
                    &internal_d,
                    vec![addrs::XTR_Y],
                    pce_d_db,
                ))),
            );
            let xtr_y = sim.add_node(
                "xTR-Y",
                Box::new(Xtr::new(make_cfg(
                    addrs::XTR_Y,
                    d_prefix,
                    mode_d,
                    &internal_d,
                    vec![addrs::XTR_X],
                    pce_d_db,
                ))),
            );
            xtrs_opt = Some([xtr_a, xtr_b, xtr_x, xtr_y]);

            // Site ports (xTR port 0 = site).
            let (_, sp_xtr_a) = sim.connect(xtr_a, site_s, LinkCfg::lan());
            let (_, sp_xtr_b) = sim.connect(xtr_b, site_s, LinkCfg::lan());
            let (_, sp_xtr_x) = sim.connect(xtr_x, site_d, LinkCfg::lan());
            let (_, sp_xtr_y) = sim.connect(xtr_y, site_d, LinkCfg::lan());
            site_s_egress_ports = Some((sp_xtr_a, sp_xtr_b));

            // WAN ports (xTR port 1 = provider link to core).
            let mut links = [0usize; 4];
            for (i, &(xtr, bw)) in [
                (xtr_a, p.provider_bw[0]),
                (xtr_b, p.provider_bw[1]),
                (xtr_x, p.provider_bw[2]),
                (xtr_y, p.provider_bw[3]),
            ]
            .iter()
            .enumerate()
            {
                links[i] = sim.link_count();
                let (_, core_port) = sim.connect(
                    xtr,
                    core,
                    LinkCfg::wan(p.provider_owd)
                        .with_bandwidth(bw)
                        .with_drop_prob(p.wan_drop_prob),
                );
                let provider_prefix =
                    Prefix::new(Ipv4Address::new([10, 11, 12, 13][i], 0, 0, 0), 8);
                sim.node_mut::<Router>(core)
                    .add_route(provider_prefix, core_port);
            }
            provider_links = links;

            // Site-router tables.
            {
                let r = sim.node_mut::<FlowRouter>(site_s);
                r.add_route(Prefix::host(addrs::HOST_S), sp_host_s);
                r.add_route(s_prefix, sp_host_s);
                r.add_route(Prefix::host(addrs::XTR_A), sp_xtr_a);
                r.add_route(Prefix::host(addrs::XTR_B), sp_xtr_b);
                r.add_route(Prefix::host(addrs::DNS_S), sp_dns_s);
                if cp == CpKind::Pce {
                    r.add_route(Prefix::host(addrs::PCE_S), sp_dns_s);
                }
                r.set_default_route(sp_xtr_a);
            }
            {
                let r = sim.node_mut::<FlowRouter>(site_d);
                r.add_route(d_prefix, sp_host_d);
                r.add_route(Prefix::host(addrs::XTR_X), sp_xtr_x);
                r.add_route(Prefix::host(addrs::XTR_Y), sp_xtr_y);
                r.add_route(Prefix::host(addrs::DNS_D), sp_dns_d);
                if cp == CpKind::Pce {
                    r.add_route(Prefix::host(addrs::PCE_D), sp_dns_d);
                }
                r.set_default_route(sp_xtr_x);
            }
        }

        // ---- DNS infrastructure at the core ------------------------------------
        for (node, addr) in [(root, addrs::ROOT), (tld, addrs::TLD)] {
            let (_, port) = sim.connect(
                node,
                core,
                LinkCfg::wan(p.infra_owd).with_drop_prob(p.wan_drop_prob),
            );
            sim.node_mut::<Router>(core)
                .add_route(Prefix::host(addr), port);
        }

        // ---- Mapping-system infrastructure --------------------------------------
        let mut db = MappingDb::new();
        if p.fine_grained_mappings {
            db.register(SiteEntry::single(
                Prefix::host(addrs::HOST_S),
                addrs::XTR_A,
                p.mapping_ttl_minutes,
            ));
            db.register(SiteEntry::single(
                Prefix::host(addrs::HOST_D_BASE),
                addrs::XTR_X,
                p.mapping_ttl_minutes,
            ));
            for eid in &dest_eids {
                db.register(SiteEntry::single(
                    Prefix::host(*eid),
                    addrs::XTR_X,
                    p.mapping_ttl_minutes,
                ));
            }
        } else {
            db.register(SiteEntry::single(
                s_prefix,
                addrs::XTR_A,
                p.mapping_ttl_minutes,
            ));
            db.register(SiteEntry::single(
                d_prefix,
                addrs::XTR_X,
                p.mapping_ttl_minutes,
            ));
        }

        match cp {
            CpKind::LispDrop | CpKind::LispQueue | CpKind::LispDataCp => {
                let mr = sim.add_node(
                    "map-resolver",
                    Box::new(MapResolver::new(addrs::MAP_RESOLVER, &db)),
                );
                let (_, port) = sim.connect(mr, core, LinkCfg::wan(p.infra_owd));
                sim.node_mut::<Router>(core)
                    .add_route(Prefix::host(addrs::MAP_RESOLVER), port);
                mr_node = Some(mr);
            }
            CpKind::Alt { hops } => {
                // One shared linear overlay; the entry router doubles as
                // the map-resolver address; deliveries at the far end.
                let chain_addrs: Vec<Ipv4Address> = (0..hops.max(1))
                    .map(|i| Ipv4Address::new(9, 1, 0, (i + 1) as u8))
                    .collect();
                let mut routers = linear_chain(&chain_addrs, d_prefix, addrs::XTR_X);
                // Also deliver the reverse direction at the far end.
                if let Some(last) = routers.last_mut() {
                    last.add_delivery(s_prefix, addrs::XTR_A);
                }
                // The *first* router is the entry the ITRs use: route both
                // prefixes forward.
                if routers.len() > 1 {
                    routers[0].add_overlay_route(s_prefix, chain_addrs[1]);
                    for i in 1..routers.len() - 1 {
                        routers[i].add_overlay_route(s_prefix, chain_addrs[i + 1]);
                    }
                } else {
                    routers[0].add_delivery(s_prefix, addrs::XTR_A);
                }
                for (i, r) in routers.into_iter().enumerate() {
                    let node = sim.add_node(&format!("alt-{i}"), Box::new(r));
                    let (_, port) = sim.connect(node, core, LinkCfg::wan(p.infra_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(chain_addrs[i]), port);
                    alt_nodes.push(node);
                }
                // Point the xTRs at the entry router.
                if let Some(xtrs) = xtrs_opt {
                    for &x in &xtrs {
                        sim.node_mut::<Xtr>(x).cfg.mode = CpMode::Pull {
                            map_resolver: Some(chain_addrs[0]),
                        };
                    }
                }
            }
            CpKind::Cons { cdr_depth } => {
                let car_s_addr = Ipv4Address::new(9, 2, 0, 1);
                let car_d_addr = Ipv4Address::new(9, 2, 0, 2);
                let cdr_addrs: Vec<Ipv4Address> = (0..=cdr_depth)
                    .map(|i| Ipv4Address::new(9, 2, 1, (i + 1) as u8))
                    .collect();
                // CAR_S -> cdr[0] -> ... -> cdr[depth] (root) and CAR_D
                // under the root as well.
                let mut car_s = ConsNode::new(car_s_addr, Some(cdr_addrs[0]));
                car_s.add_site(s_prefix, addrs::XTR_A);
                let mut car_d = ConsNode::new(car_d_addr, Some(cdr_addrs[0]));
                car_d.add_site(d_prefix, addrs::XTR_X);
                let mut cdrs: Vec<ConsNode> = Vec::new();
                for (i, &addr) in cdr_addrs.iter().enumerate() {
                    let parent = cdr_addrs.get(i + 1).copied();
                    let mut n = ConsNode::new(addr, parent);
                    if i == 0 {
                        n.add_child(s_prefix, car_s_addr);
                        n.add_child(d_prefix, car_d_addr);
                    } else {
                        n.add_child(s_prefix, cdr_addrs[i - 1]);
                        n.add_child(d_prefix, cdr_addrs[i - 1]);
                    }
                    cdrs.push(n);
                }
                for (node, addr) in [(car_s, car_s_addr), (car_d, car_d_addr)] {
                    let id = sim.add_node(&format!("cons-car-{addr}"), Box::new(node));
                    let (_, port) = sim.connect(id, core, LinkCfg::wan(p.infra_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(addr), port);
                    cons_nodes.push(id);
                }
                for (i, node) in cdrs.into_iter().enumerate() {
                    let id = sim.add_node(&format!("cons-cdr-{i}"), Box::new(node));
                    let (_, port) = sim.connect(id, core, LinkCfg::wan(p.infra_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(cdr_addrs[i]), port);
                    cons_nodes.push(id);
                }
                if let Some(xtrs) = xtrs_opt {
                    // S-side xTRs ask CAR_S; D-side ask CAR_D.
                    sim.node_mut::<Xtr>(xtrs[0]).cfg.mode = CpMode::Pull {
                        map_resolver: Some(car_s_addr),
                    };
                    sim.node_mut::<Xtr>(xtrs[1]).cfg.mode = CpMode::Pull {
                        map_resolver: Some(car_s_addr),
                    };
                    sim.node_mut::<Xtr>(xtrs[2]).cfg.mode = CpMode::Pull {
                        map_resolver: Some(car_d_addr),
                    };
                    sim.node_mut::<Xtr>(xtrs[3]).cfg.mode = CpMode::Pull {
                        map_resolver: Some(car_d_addr),
                    };
                }
            }
            CpKind::Nerd => {
                let authority = NerdAuthority::new(
                    addrs::NERD,
                    &db,
                    vec![addrs::XTR_A, addrs::XTR_B, addrs::XTR_X, addrs::XTR_Y],
                );
                let nerd = sim.add_node("nerd", Box::new(authority));
                let (_, port) = sim.connect(nerd, core, LinkCfg::wan(p.infra_owd));
                sim.node_mut::<Router>(core)
                    .add_route(Prefix::host(addrs::NERD), port);
                nerd_node = Some(nerd);
            }
            CpKind::NoLisp | CpKind::Pce => {}
        }

        Fig1World {
            sim,
            cp,
            host_s,
            host_d,
            xtrs: xtrs_opt,
            resolver_s,
            dns_d,
            pces,
            site_routers: (site_s, site_d),
            core,
            provider_links,
            dest_eids,
            site_s_egress_ports,
            mr_node,
            nerd_node,
            alt_nodes,
            cons_nodes,
        }
    }
}

/// Build a flow script: `n` flows starting at the given times, one
/// destination name each (round-robin over `dest_count` names).
pub fn flow_script(starts: &[Ns], dest_count: usize, mode: FlowMode) -> Vec<FlowSpec> {
    starts
        .iter()
        .enumerate()
        .map(|(i, &start)| FlowSpec {
            start,
            qname: Name::parse_str(&format!("host-{}.d.example", i % dest_count.max(1)))
                .expect("valid"),
            mode,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tcp_mode() -> FlowMode {
        FlowMode::Tcp {
            packets: 2,
            interval: Ns::from_ms(1),
            size: 100,
        }
    }

    fn run_one(cp: CpKind) -> (Fig1World, crate::hosts::FlowRecord) {
        let mut world = Fig1Builder::new(cp)
            .with_params(|p| {
                p.flows = flow_script(&[Ns::ZERO], 4, tcp_mode());
            })
            .build(1);
        world.sim.trace.enable();
        world.schedule_all_flows();
        world.sim.run_until(Ns::from_secs(30));
        let rec = world.records()[0].clone();
        (world, rec)
    }

    #[test]
    fn no_lisp_flow_completes() {
        let (_w, rec) = run_one(CpKind::NoLisp);
        assert!(rec.dns_time().is_some(), "dns never answered");
        assert!(rec.setup_time().is_some(), "tcp never established");
    }

    #[test]
    fn pce_flow_completes() {
        let (mut w, rec) = run_one(CpKind::Pce);
        assert!(rec.dns_time().is_some(), "dns: {:?}", rec);
        assert!(
            rec.setup_time().is_some(),
            "tcp never established; trace:\n{}",
            w.sim.trace.render()
        );
        // No drops anywhere in the PCE world.
        assert_eq!(w.total_miss_drops(), 0);
        // The PCEs actually did their steps.
        let (pce_s, pce_d) = w.pces.unwrap();
        assert!(w.sim.node_ref::<Pce>(pce_d).stats.dns_intercepts >= 1);
        let s = w.sim.node_ref::<Pce>(pce_s);
        assert!(s.stats.p_decaps >= 1);
        assert!(s.stats.pushes_sent >= 2);
    }

    #[test]
    fn lisp_drop_flow_completes_with_retries() {
        let (mut w, rec) = run_one(CpKind::LispDrop);
        assert!(rec.dns_time().is_some());
        // The SYN is dropped at the ITR; TCP has no retransmission in our
        // mini-stack, so establishment never happens — exactly the
        // pathology the paper describes (first packets lost).
        let drops = w.total_miss_drops();
        assert!(drops >= 1, "expected at least the SYN dropped, got {drops}");
    }

    #[test]
    fn lisp_queue_flow_completes() {
        let (mut w, rec) = run_one(CpKind::LispQueue);
        assert!(
            rec.setup_time().is_some(),
            "queued SYN must eventually establish"
        );
        assert_eq!(w.total_miss_drops(), 0);
        let xtrs = w.xtrs.unwrap();
        let queued: u64 = xtrs
            .iter()
            .map(|&x| w.sim.node_ref::<Xtr>(x).stats.queued)
            .sum();
        assert!(queued >= 1);
    }

    #[test]
    fn nerd_flow_completes_without_misses() {
        let (mut w, rec) = run_one(CpKind::Nerd);
        assert!(rec.setup_time().is_some());
        assert_eq!(w.total_miss_drops(), 0);
        let xtrs = w.xtrs.unwrap();
        let installed: u64 = xtrs
            .iter()
            .map(|&x| w.sim.node_ref::<Xtr>(x).stats.db_records_installed)
            .sum();
        assert!(installed >= 8, "4 xTRs x 2 records");
    }

    #[test]
    fn alt_flow_queue_policy_completes() {
        let mut world = Fig1Builder::new(CpKind::Alt { hops: 3 })
            .with_params(|p| {
                p.flows = flow_script(&[Ns::ZERO], 4, tcp_mode());
            })
            .build(1);
        // Queue policy so the handshake survives resolution latency.
        if let Some(xtrs) = world.xtrs {
            for &x in &xtrs {
                world.sim.node_mut::<Xtr>(x).cfg.miss_policy =
                    MissPolicy::Queue { max_packets: 64 };
            }
        }
        world.schedule_all_flows();
        world.sim.run_until(Ns::from_secs(30));
        let rec = world.records()[0].clone();
        assert!(rec.setup_time().is_some(), "alt resolution must complete");
    }

    #[test]
    fn cons_flow_queue_policy_completes() {
        let mut world = Fig1Builder::new(CpKind::Cons { cdr_depth: 1 })
            .with_params(|p| {
                p.flows = flow_script(&[Ns::ZERO], 4, tcp_mode());
            })
            .build(1);
        if let Some(xtrs) = world.xtrs {
            for &x in &xtrs {
                world.sim.node_mut::<Xtr>(x).cfg.miss_policy =
                    MissPolicy::Queue { max_packets: 64 };
            }
        }
        world.schedule_all_flows();
        world.sim.run_until(Ns::from_secs(30));
        let rec = world.records()[0].clone();
        assert!(rec.setup_time().is_some(), "cons resolution must complete");
    }

    #[test]
    fn pce_faster_than_lisp_queue() {
        let (_, rec_pce) = run_one(CpKind::Pce);
        let (_, rec_q) = run_one(CpKind::LispQueue);
        let (_, rec_nolisp) = run_one(CpKind::NoLisp);
        let pce = rec_pce.setup_time().unwrap();
        let q = rec_q.setup_time().unwrap();
        let nolisp = rec_nolisp.setup_time().unwrap();
        assert!(pce < q, "pce {pce} vs queue {q}");
        // PCE ≈ today's Internet (within 15 ms of slack for PCE bumps).
        assert!(
            pce < nolisp + Ns::from_ms(15),
            "pce {pce} vs no-lisp {nolisp}"
        );
    }
}
