//! Scenario vocabulary shared by every world: the control-plane menu
//! ([`CpKind`]), the site-internal [`FlowRouter`], the paper's
//! well-known addresses ([`addrs`]) and the classic Fig. 1 flow-script
//! helper ([`flow_script`]).
//!
//! World *construction* lives in [`crate::spec`]: describe a topology
//! with [`crate::spec::ScenarioSpec`] (the [`crate::spec::ScenarioSpec::fig1`]
//! preset reproduces the paper's figure exactly) and `build(seed)` it
//! into a [`crate::spec::World`].

use inet::{LpmTrie, Prefix};
use lispwire::{Ipv4Address, Packet};
use netsim::{Ctx, LazyCounter, Node, PortId, ScheduledUpdates};
use std::any::Any;
use std::borrow::Cow;
use std::collections::BTreeMap;

/// Which control plane runs in the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpKind {
    /// No LISP at all: EIDs are globally routable (today's Internet, the
    /// `T_DNS + 2·OWD + OWD` baseline of §1).
    NoLisp,
    /// Vanilla LISP, Map-Resolver pull, packets dropped on miss.
    LispDrop,
    /// Vanilla LISP, packets queued on miss.
    LispQueue,
    /// Vanilla LISP, data carried over the control plane on miss.
    LispDataCp,
    /// LISP+ALT with an overlay chain of the given length.
    Alt {
        /// Number of overlay routers between ITR and ETR side.
        hops: usize,
    },
    /// LISP-CONS with the given number of interior CDR levels.
    Cons {
        /// Interior depth (0 = the CARs share one root CDR).
        cdr_depth: usize,
    },
    /// NERD pushed database.
    Nerd,
    /// The paper's PCE-based control plane.
    Pce,
}

impl CpKind {
    /// Report label. Borrowed for the fixed variants so sweep row loops
    /// don't allocate a fresh `String` per call.
    pub fn label(&self) -> Cow<'static, str> {
        match self {
            CpKind::NoLisp => Cow::Borrowed("no-lisp"),
            CpKind::LispDrop => Cow::Borrowed("lisp-drop"),
            CpKind::LispQueue => Cow::Borrowed("lisp-queue"),
            CpKind::LispDataCp => Cow::Borrowed("lisp-data-cp"),
            CpKind::Alt { hops } => Cow::Owned(format!("lisp-alt-{hops}")),
            CpKind::Cons { cdr_depth } => Cow::Owned(format!("lisp-cons-{cdr_depth}")),
            CpKind::Nerd => Cow::Borrowed("nerd"),
            CpKind::Pce => Cow::Borrowed("pce"),
        }
    }

    /// All comparison variants used by the experiment sweeps.
    pub fn all() -> Vec<CpKind> {
        vec![
            CpKind::NoLisp,
            CpKind::LispDrop,
            CpKind::LispQueue,
            CpKind::LispDataCp,
            CpKind::Alt { hops: 4 },
            CpKind::Cons { cdr_depth: 1 },
            CpKind::Nerd,
            CpKind::Pce,
        ]
    }
}

/// A router with per-flow `(src, dst)` port overrides on top of LPM —
/// the site-internal routing knob that picks the egress border router
/// ("PCE_S can … move part of its internal traffic").
pub struct FlowRouter {
    routes: LpmTrie<PortId>,
    overrides: BTreeMap<(Ipv4Address, Ipv4Address), PortId>,
    /// Timed route changes (dynamics; see [`FlowRouter::schedule_route`]).
    scheduled_routes: ScheduledUpdates<(Prefix, PortId)>,
    /// Packets forwarded.
    pub forwarded: u64,
    /// Packets dropped for lack of a route.
    pub dropped: u64,
    /// Scheduled route changes applied so far.
    pub route_updates_applied: u64,
    ctr_dropped: LazyCounter,
}

impl FlowRouter {
    /// An empty flow router.
    pub fn new() -> Self {
        Self {
            routes: LpmTrie::new(),
            overrides: BTreeMap::new(),
            scheduled_routes: ScheduledUpdates::new(),
            forwarded: 0,
            dropped: 0,
            route_updates_applied: 0,
            ctr_dropped: LazyCounter::new(),
        }
    }

    /// Install a prefix route.
    pub fn add_route(&mut self, prefix: Prefix, port: PortId) -> &mut Self {
        self.routes.insert(prefix, port);
        self
    }

    /// Install the default route.
    pub fn set_default_route(&mut self, port: PortId) -> &mut Self {
        self.add_route(Prefix::DEFAULT, port)
    }

    /// Pin a flow to a port (TE override).
    pub fn pin_flow(&mut self, src: Ipv4Address, dst: Ipv4Address, port: PortId) {
        self.overrides.insert((src, dst), port);
    }

    /// Remove a pin.
    pub fn unpin_flow(&mut self, src: Ipv4Address, dst: Ipv4Address) {
        self.overrides.remove(&(src, dst));
    }

    /// Install (or replace) the route for `prefix` at absolute
    /// simulation time `at` — the site IGP re-converging onto a
    /// surviving egress after a border failure (DESIGN.md §7). Use
    /// [`Prefix::DEFAULT`] to move the default route.
    pub fn schedule_route(&mut self, at: netsim::Ns, prefix: Prefix, port: PortId) {
        self.scheduled_routes.push(at, (prefix, port));
    }
}

impl Default for FlowRouter {
    fn default() -> Self {
        Self::new()
    }
}

impl Node<Packet> for FlowRouter {
    fn on_start(&mut self, ctx: &mut Ctx<'_, Packet>) {
        self.scheduled_routes.arm(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, token: u64) {
        if let Some(&(prefix, port)) = self.scheduled_routes.get(token) {
            self.routes.insert(prefix, port);
            self.route_updates_applied += 1;
            ctx.trace(format!("igp reroute: {prefix} now via port {port}"));
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Packet>, _port: PortId, pkt: Packet) {
        // Site-internal hop: no TTL work (modelled as L2/IGP forwarding).
        let (src, dst) = (pkt.src(), pkt.dst());
        let port = self
            .overrides
            .get(&(src, dst))
            .copied()
            .or_else(|| self.routes.lookup_value(dst).copied());
        match port {
            Some(p) => {
                self.forwarded += 1;
                ctx.send(p, pkt);
            }
            None => {
                self.dropped += 1;
                self.ctr_dropped.add(ctx, "flowrouter.dropped", 1);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// Well-known addresses of the Fig. 1 world.
pub mod addrs {
    use lispwire::Ipv4Address;

    /// `E_S`, the source end-host.
    pub const HOST_S: Ipv4Address = Ipv4Address::new(100, 0, 0, 5);
    /// Base for `E_D` server EIDs (`host-i.d.example` = base + 10 + i).
    pub const HOST_D_BASE: Ipv4Address = Ipv4Address::new(101, 0, 0, 7);
    /// Border router on provider A.
    pub const XTR_A: Ipv4Address = Ipv4Address::new(10, 0, 0, 1);
    /// Border router on provider B.
    pub const XTR_B: Ipv4Address = Ipv4Address::new(11, 0, 0, 1);
    /// Border router on provider X.
    pub const XTR_X: Ipv4Address = Ipv4Address::new(12, 0, 0, 1);
    /// Border router on provider Y.
    pub const XTR_Y: Ipv4Address = Ipv4Address::new(13, 0, 0, 1);
    /// `DNS_S`, the domain-S recursive resolver.
    pub const DNS_S: Ipv4Address = Ipv4Address::new(10, 0, 0, 53);
    /// `DNS_D`, the domain-D authoritative server.
    pub const DNS_D: Ipv4Address = Ipv4Address::new(12, 0, 0, 53);
    /// `PCE_S`.
    pub const PCE_S: Ipv4Address = Ipv4Address::new(10, 0, 0, 200);
    /// `PCE_D`.
    pub const PCE_D: Ipv4Address = Ipv4Address::new(12, 0, 0, 200);
    /// DNS root server.
    pub const ROOT: Ipv4Address = Ipv4Address::new(8, 0, 0, 53);
    /// `example` TLD server.
    pub const TLD: Ipv4Address = Ipv4Address::new(9, 0, 0, 53);
    /// Map-resolver (vanilla pull).
    pub const MAP_RESOLVER: Ipv4Address = Ipv4Address::new(8, 0, 0, 10);
    /// Standby map-resolver twin (replicated worlds only).
    pub const MAP_RESOLVER_2: Ipv4Address = Ipv4Address::new(8, 0, 0, 11);
    /// NERD authority.
    pub const NERD: Ipv4Address = Ipv4Address::new(8, 0, 0, 20);
    /// Standby NERD authority twin (replicated worlds only).
    pub const NERD_2: Ipv4Address = Ipv4Address::new(8, 0, 0, 21);
    /// Standby ALT entry gateway (replicated worlds only).
    pub const ALT_GATEWAY_2: Ipv4Address = Ipv4Address::new(9, 1, 0, 254);
}

/// Build a flow script against the Fig. 1 zone: `n` flows starting at
/// the given times, one destination name each (round-robin over
/// `dest_count` names in `d.example`).
pub fn flow_script(
    starts: &[netsim::Ns],
    dest_count: usize,
    mode: crate::hosts::FlowMode,
) -> Vec<crate::hosts::FlowSpec> {
    use lispwire::dnswire::Name;
    starts
        .iter()
        .enumerate()
        .map(|(i, &start)| crate::hosts::FlowSpec {
            start,
            qname: Name::parse_str(&format!("host-{}.d.example", i % dest_count.max(1)))
                .expect("valid"),
            mode,
        })
        .collect()
}
