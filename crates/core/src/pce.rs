//! The PCE node — the paper's contribution.
//!
//! A PCE is a *bump in the wire* on its domain's DNS path: **port 0 faces
//! the DNS server, port 1 faces the domain network**. Every packet is
//! forwarded transparently between the two ports, except:
//!
//! * **Step 1 (IPC)** — `IpcQueryNotice` messages from the local DNS
//!   server record which end-host (`E_S`) asked for which name, and the
//!   IRC engine's current ingress choice is noted for the reverse
//!   direction.
//! * **Step 6 (PCE_D role)** — a DNS *response* from the local server
//!   whose A answer falls in this domain's EID space is intercepted and
//!   re-sent as a [`PceMsg::DnsMapping`] on the special port `P`, addressed to
//!   the querying DNS server, carrying the original reply plus the
//!   precomputed mapping. The IRC engine runs "online … in background, so
//!   the mapping is always known aforehand" — the `precompute` knob
//!   models that claim (ablation A2 turns it off).
//! * **Steps 7a/7b (PCE_S role)** — a port-`P` packet passing toward the
//!   local DNS server is decapsulated: the original DNS reply continues
//!   unmodified to the server (7a), while the flow mapping
//!   `(E_S, E_D, RLOC_S, RLOC_D)` — with `RLOC_S` chosen by the IRC
//!   engine for the *inbound* traffic — is pushed to **all** local ITRs
//!   (7b).
//! * **After step 8** — `ETR_SYNC` messages from the domain's ETRs update
//!   the PCE database (two-way mapping completion).

use inet::stack::IpStack;
use inet::Prefix;
use ircte::{IrcEngine, Provider, SelectionPolicy};
use lispwire::lispctl::{Locator, MapRecord};
use lispwire::packet::{Packet, PceMsg};
use lispwire::pcewire::{FlowMapping, PceFlowMsg, PceKind};
use lispwire::{ports, Ipv4Address};
use netsim::{Ctx, Node, Ns, PortId};
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Static configuration of a PCE.
#[derive(Debug, Clone)]
pub struct PceConfig {
    /// The PCE's own address (RLOC space).
    pub addr: Ipv4Address,
    /// EID prefixes of the local domain (answers falling here trigger the
    /// step-6 interception).
    pub domain_eid_prefixes: Vec<Prefix>,
    /// All local ITR/xTR RLOCs: step-7b push targets.
    pub itr_rlocs: Vec<Ipv4Address>,
    /// The providers of this domain, driving the IRC engine.
    pub providers: Vec<Provider>,
    /// IRC selection policy.
    pub policy: SelectionPolicy,
    /// TTL stamped on issued mappings (minutes).
    pub mapping_ttl_minutes: u16,
    /// Whether the outbound mapping is precomputed (paper claim: yes).
    /// When `false`, every step-6 interception pays `on_demand_delay`
    /// (ablation A2).
    pub precompute: bool,
    /// Extra computation delay when `precompute` is off.
    pub on_demand_delay: Ns,
    /// Per-packet transparent-forwarding delay of the bump in the wire.
    pub forward_delay: Ns,
    /// Rate estimate (capacity units) booked per admitted flow.
    pub flow_rate_estimate: f64,
    /// Push mappings to all ITRs (paper default) or only the first
    /// (ablation A1).
    pub push_to_all_itrs: bool,
    /// Warm-standby twin, if any: every flow decision inserted into the
    /// database is mirrored there as a [`PceKind::ReverseSync`] message,
    /// so a [`TOKEN_TAKEOVER`] on the twin can re-push the full flow
    /// database after this PCE dies (replica failover, DESIGN.md §13).
    pub mirror_to: Option<Ipv4Address>,
}

impl PceConfig {
    /// A configuration with the paper's defaults.
    pub fn new(
        addr: Ipv4Address,
        domain_eid_prefixes: Vec<Prefix>,
        itr_rlocs: Vec<Ipv4Address>,
        providers: Vec<Provider>,
    ) -> Self {
        Self {
            addr,
            domain_eid_prefixes,
            itr_rlocs,
            providers,
            policy: SelectionPolicy::WeightedBalance,
            mapping_ttl_minutes: 60,
            precompute: true,
            on_demand_delay: Ns::from_ms(2),
            forward_delay: Ns::from_us(5),
            flow_rate_estimate: 1.0,
            push_to_all_itrs: true,
            mirror_to: None,
        }
    }
}

/// Public counters of a PCE.
#[derive(Debug, Default, Clone)]
pub struct PceStats {
    /// Packets transparently forwarded (both directions).
    pub forwarded: u64,
    /// IPC notices recorded.
    pub ipc_notices: u64,
    /// DNS replies intercepted and encapsulated (step 6).
    pub dns_intercepts: u64,
    /// Port-`P` packets decapsulated (step 7).
    pub p_decaps: u64,
    /// Flow-mapping pushes sent to ITRs (step 7b).
    pub pushes_sent: u64,
    /// Withdraw messages sent (TE moves).
    pub withdraws_sent: u64,
    /// Reverse syncs absorbed into the database.
    pub reverse_syncs_received: u64,
    /// Step-7 arrivals whose requester EID was unknown (no IPC notice).
    pub unknown_requester: u64,
    /// Database inserts mirrored to the standby twin.
    pub mirrors_sent: u64,
    /// Flows re-pushed by a standby takeover.
    pub takeover_pushes: u64,
    /// Provider reachability events processed (dynamics).
    pub provider_events: u64,
    /// Flows re-pathed onto a surviving provider after a failure.
    pub repaths: u64,
    /// Malformed messages seen.
    pub malformed: u64,
}

const DNS_PORT: PortId = 0;
const NET_PORT: PortId = 1;
const TOKEN_RELEASE: u64 = 0x7CE0_0000_0000_0000;
const TOKEN_PROVIDER_BASE: u64 = 0x7CE1_0000_0000_0000;
const TOKEN_PROVIDER_UP_BIT: u64 = 1 << 16;

/// Timer token that promotes a warm standby: re-push every database
/// flow to the local ITRs (scheduled by the dynamics subsystem at
/// detection time after the primary dies).
pub const TOKEN_TAKEOVER: u64 = 0x7CE2_0000_0000_0000;

/// The PCE node (acts as `PCE_S` and `PCE_D` simultaneously).
pub struct Pce {
    /// Static configuration.
    pub cfg: PceConfig,
    stack: IpStack,
    /// The online IRC engine.
    pub irc: IrcEngine,
    /// qname → requesting end-host, learned over IPC (step 1).
    pending_requesters: BTreeMap<String, Ipv4Address>,
    /// The PCE mapping database: flow → mapping (updated by step 7b
    /// decisions and ETR reverse syncs).
    pub db: BTreeMap<(Ipv4Address, Ipv4Address), FlowMapping>,
    release_queue: VecDeque<(PortId, Packet)>,
    /// Counters.
    pub stats: PceStats,
    /// Times at which each step-7b push batch completed (for E3/E7).
    pub push_times: Vec<Ns>,
}

impl Pce {
    /// Build a PCE from its configuration.
    pub fn new(cfg: PceConfig) -> Self {
        let irc = IrcEngine::new(cfg.providers.clone(), cfg.policy);
        Self {
            stack: IpStack::new(cfg.addr),
            irc,
            pending_requesters: BTreeMap::new(),
            db: BTreeMap::new(),
            release_queue: VecDeque::new(),
            stats: PceStats::default(),
            push_times: Vec::new(),
            cfg,
        }
    }

    /// This PCE's address.
    pub fn addr(&self) -> Ipv4Address {
        self.cfg.addr
    }

    fn in_domain_eids(&self, addr: Ipv4Address) -> bool {
        self.cfg
            .domain_eid_prefixes
            .iter()
            .any(|p| p.contains(addr))
    }

    fn release_later(&mut self, ctx: &mut Ctx<'_, Packet>, delay: Ns, port: PortId, pkt: Packet) {
        self.release_queue.push_back((port, pkt));
        ctx.set_timer(delay, TOKEN_RELEASE);
    }

    /// Compose the mapping record for a local EID: the full locator set
    /// with the IRC engine's current choice at priority 1.
    fn mapping_for(&mut self, eid: Ipv4Address) -> MapRecord {
        let chosen = self.irc.peek_choice().map(|(p, _)| p);
        let locators: Vec<Locator> = self
            .irc
            .providers()
            .iter()
            .enumerate()
            .map(|(i, p)| Locator {
                rloc: p.rloc,
                priority: if Some(i) == chosen { 1 } else { 2 },
                weight: p.weight.min(255) as u8,
                reachable: p.up,
            })
            .collect();
        MapRecord {
            eid_prefix: eid,
            prefix_len: 32,
            ttl_minutes: self.cfg.mapping_ttl_minutes,
            locators,
        }
    }

    /// Step 6: intercept a DNS reply leaving the domain's server. The
    /// original reply *packet* is carried inside the step-6 message as a
    /// typed value (no re-serialization anywhere on the path).
    fn intercept_dns_reply(
        &mut self,
        ctx: &mut Ctx<'_, Packet>,
        original: Packet,
        reply_dst: Ipv4Address,
        answer_eid: Ipv4Address,
    ) {
        self.stats.dns_intercepts += 1;
        // Book the inbound flow on the chosen provider.
        let _ = self
            .irc
            .admit_flow((reply_dst, answer_eid), self.cfg.flow_rate_estimate);
        let mapping = self.mapping_for(answer_eid);
        ctx.trace(format!(
            "step6: PCE_D {} encapsulates DNS reply for {} with mapping (best rloc {})",
            self.cfg.addr,
            answer_eid,
            mapping
                .best_locator()
                .map(|l| l.rloc.to_string())
                .unwrap_or_default()
        ));
        let msg = PceMsg::DnsMapping {
            pce_d: self.cfg.addr,
            mapping,
            dns_reply: Box::new(original),
        };
        let pkt = self
            .stack
            .pce(ports::PCE_MAP, reply_dst, ports::PCE_MAP, msg);
        let delay = if self.cfg.precompute {
            self.cfg.forward_delay
        } else {
            self.cfg.forward_delay + self.cfg.on_demand_delay
        };
        self.release_later(ctx, delay, NET_PORT, pkt);
    }

    /// Steps 7a + 7b: a port-`P` packet arrived for our DNS server.
    fn handle_port_p(&mut self, ctx: &mut Ctx<'_, Packet>, pkt: Packet) {
        let Packet::Pce {
            msg: PceMsg::DnsMapping {
                mapping, dns_reply, ..
            },
            ..
        } = pkt
        else {
            self.stats.malformed += 1;
            return;
        };
        self.stats.p_decaps += 1;
        // 7a: forward the original DNS answer to the server, unmodified
        // (the typed reply packet is lifted out of the encapsulation).
        ctx.trace(format!(
            "step7a: PCE_S {} forwards DNS answer to local server",
            self.cfg.addr
        ));
        let qname = parse_qname(&dns_reply);
        let fwd_delay = self.cfg.forward_delay;
        self.release_later(ctx, fwd_delay, DNS_PORT, *dns_reply);

        // 7b: install the two-one-way-tunnel mapping at every ITR.
        let dest_eid = mapping.eid_prefix;
        let Some(rloc_d) = mapping.best_locator().map(|l| l.rloc) else {
            self.stats.malformed += 1;
            return;
        };
        // Find E_S from the IPC notice (match on the reply's qname).
        let Some(source_eid) = qname
            .as_deref()
            .and_then(|q| self.pending_requesters.remove(q))
        else {
            self.stats.unknown_requester += 1;
            return;
        };
        // Step 1's ingress choice for the reverse (inbound) direction.
        let Some((_, rloc_s)) = self
            .irc
            .admit_flow((source_eid, dest_eid), self.cfg.flow_rate_estimate)
        else {
            return;
        };
        let flow = FlowMapping {
            source_eid,
            dest_eid,
            rloc_s,
            rloc_d,
            ttl_minutes: self.cfg.mapping_ttl_minutes,
        };
        self.db.insert((source_eid, dest_eid), flow);
        self.mirror_flow(ctx, flow);
        self.push_flow(ctx, flow, PceKind::MappingPush);
        self.push_times.push(ctx.now());
        ctx.trace(format!(
            "step7b: PCE_S {} pushed ({} -> {}) via (RLOC_S {}, RLOC_D {}) to {} ITRs",
            self.cfg.addr,
            source_eid,
            dest_eid,
            rloc_s,
            rloc_d,
            if self.cfg.push_to_all_itrs {
                self.cfg.itr_rlocs.len()
            } else {
                1
            }
        ));
    }

    /// Mirror one database insert to the warm-standby twin (as the same
    /// [`PceKind::ReverseSync`] kind the ETRs use, which the twin's
    /// handler absorbs silently into its database).
    fn mirror_flow(&mut self, ctx: &mut Ctx<'_, Packet>, flow: FlowMapping) {
        let Some(twin) = self.cfg.mirror_to else {
            return;
        };
        let msg = PceFlowMsg {
            kind: PceKind::ReverseSync,
            mapping: flow,
        };
        let pkt = self
            .stack
            .pce(ports::ETR_SYNC, twin, ports::ETR_SYNC, PceMsg::Flow(msg));
        self.stats.mirrors_sent += 1;
        ctx.send(NET_PORT, pkt);
    }

    fn push_flow(&mut self, ctx: &mut Ctx<'_, Packet>, flow: FlowMapping, kind: PceKind) {
        let msg = PceFlowMsg {
            kind,
            mapping: flow,
        };
        let targets: Vec<Ipv4Address> = if self.cfg.push_to_all_itrs {
            self.cfg.itr_rlocs.clone()
        } else {
            self.cfg.itr_rlocs.first().copied().into_iter().collect()
        };
        for itr in targets {
            let pkt = self
                .stack
                .pce(ports::PCE_MAP, itr, ports::PCE_MAP, PceMsg::Flow(msg));
            match kind {
                PceKind::MappingWithdraw => self.stats.withdraws_sent += 1,
                _ => self.stats.pushes_sent += 1,
            }
            ctx.send(NET_PORT, pkt);
        }
    }

    /// The timer token that delivers a provider reachability change to
    /// this node (scheduled externally by the dynamics subsystem; the
    /// site-internal IGP tells the domain PCE its border link died).
    pub fn provider_event_token(provider: usize, up: bool) -> u64 {
        TOKEN_PROVIDER_BASE
            | (if up { TOKEN_PROVIDER_UP_BIT } else { 0 })
            | (provider as u64 & 0xffff)
    }

    /// React to a provider reachability change (DESIGN.md §7). On a
    /// failure, the IRC engine is told the provider is down and every
    /// database flow whose local tunnel end (`RLOC_S`) was the dead
    /// locator is re-pathed onto a surviving provider, then re-pushed:
    ///
    /// * to **all local ITRs** (the paper's push-to-all argument makes
    ///   the move hitless for locally-originated directions), and
    /// * to the **remote tunnel end** (`RLOC_D`) of each affected flow,
    ///   fixing the opposite direction's encapsulation target — the
    ///   push-based cross-domain recovery a pull system can only match
    ///   after probe timeout plus re-resolution.
    pub fn provider_reachability_changed(
        &mut self,
        ctx: &mut Ctx<'_, Packet>,
        provider: usize,
        up: bool,
    ) {
        self.stats.provider_events += 1;
        self.irc.set_up(provider, up);
        if up {
            return;
        }
        let dead = self.irc.providers()[provider].rloc;
        // Re-home every tracked flow exactly once; db flows the engine
        // tracked under the same key reuse that choice, the rest (e.g.
        // reverse-synced entries it never saw) are admitted fresh.
        let moved: BTreeMap<(Ipv4Address, Ipv4Address), Ipv4Address> = self
            .irc
            .repath(provider)
            .into_iter()
            .map(|m| (m.flow_key, m.new_rloc))
            .collect();
        let affected: Vec<FlowMapping> = self
            .db
            .values()
            .filter(|f| f.rloc_s == dead)
            .copied()
            .collect();
        ctx.trace(format!(
            "PCE {} provider {} (RLOC {}) down: re-pathing {} flows",
            self.cfg.addr,
            provider,
            dead,
            affected.len()
        ));
        for flow in affected {
            let key = (flow.source_eid, flow.dest_eid);
            let new_rloc = match moved.get(&key) {
                Some(&rloc) => rloc,
                None => match self.irc.admit_flow(key, self.cfg.flow_rate_estimate) {
                    Some((_, rloc)) => rloc,
                    None => continue, // every provider down: nothing to re-path onto
                },
            };
            let updated = FlowMapping {
                rloc_s: new_rloc,
                ..flow
            };
            self.db.insert(key, updated);
            self.mirror_flow(ctx, updated);
            self.push_flow(ctx, updated, PceKind::MappingPush);
            // Fix the opposite direction at the remote tunnel end: its
            // flow entry (dest→source) encapsulates toward our dead
            // RLOC until told otherwise.
            let remote_fix = FlowMapping {
                source_eid: flow.dest_eid,
                dest_eid: flow.source_eid,
                rloc_s: flow.rloc_d,
                rloc_d: new_rloc,
                ttl_minutes: flow.ttl_minutes,
            };
            let msg = PceFlowMsg {
                kind: PceKind::MappingPush,
                mapping: remote_fix,
            };
            let pkt = self.stack.pce(
                ports::PCE_MAP,
                flow.rloc_d,
                ports::PCE_MAP,
                PceMsg::Flow(msg),
            );
            ctx.send(NET_PORT, pkt);
            self.stats.pushes_sent += 1;
            self.stats.repaths += 1;
        }
    }

    /// TE action: re-optimise tracked flows and re-push the moved ones
    /// with an updated `RLOC_S` (inbound move). Returns the number of
    /// flows moved. Safe precisely because every ITR already has state
    /// for every flow (the paper's argument for pushing to all ITRs).
    pub fn reoptimize_and_push(&mut self, ctx: &mut Ctx<'_, Packet>) -> usize {
        let moves = self.irc.reoptimize();
        let mut count = 0;
        for m in moves {
            if let Some(flow) = self.db.get(&m.flow_key).copied() {
                let updated = FlowMapping {
                    rloc_s: m.new_rloc,
                    ..flow
                };
                self.db.insert(m.flow_key, updated);
                self.mirror_flow(ctx, updated);
                self.push_flow(ctx, updated, PceKind::MappingPush);
                count += 1;
            }
        }
        count
    }
}

/// Extract the question name from a typed DNS-reply packet.
fn parse_qname(pkt: &Packet) -> Option<String> {
    match pkt {
        Packet::Dns { msg, .. } => msg.question().map(|q| q.name.as_str().to_string()),
        _ => None,
    }
}

impl Node<Packet> for Pce {
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Packet>, port: PortId, pkt: Packet) {
        let other = if port == DNS_PORT { NET_PORT } else { DNS_PORT };
        let dst = pkt.dst();
        // A corruption marker is the typed form of a failed checksum: the
        // byte path could not parse such packets and fell through to the
        // transparent bump-in-the-wire forward, so interpret nothing here.
        if let Some(p) = pkt.udp_ports().filter(|_| !pkt.is_corrupt()) {
            // IPC from the local DNS server (either port; consumed).
            if dst == self.cfg.addr && p.dst == ports::PCE_IPC {
                if let Packet::Pce {
                    msg: PceMsg::Ipc(notice),
                    ..
                } = pkt
                {
                    self.stats.ipc_notices += 1;
                    ctx.trace(format!(
                        "step1: PCE {} learns E_S {} for query {}",
                        self.cfg.addr, notice.client, notice.qname
                    ));
                    self.pending_requesters.insert(notice.qname, notice.client);
                } else {
                    self.stats.malformed += 1;
                }
                return;
            }
            // ETR reverse sync addressed to us (database update).
            if dst == self.cfg.addr && p.dst == ports::ETR_SYNC {
                if let Packet::Pce {
                    msg: PceMsg::Flow(msg),
                    ..
                } = pkt
                {
                    if msg.kind == PceKind::ReverseSync {
                        self.stats.reverse_syncs_received += 1;
                        self.db
                            .insert((msg.mapping.source_eid, msg.mapping.dest_eid), msg.mapping);
                        ctx.trace(format!(
                            "PCE {} database updated by reverse sync ({} -> {})",
                            self.cfg.addr, msg.mapping.source_eid, msg.mapping.dest_eid
                        ));
                    }
                } else {
                    self.stats.malformed += 1;
                }
                return;
            }
            // Step 7: port-P packets heading to our DNS server.
            if port == NET_PORT && p.dst == ports::PCE_MAP {
                self.handle_port_p(ctx, pkt);
                return;
            }
            // Step 6: DNS responses leaving our server with an answer
            // in the domain's EID space.
            if port == DNS_PORT && p.src == ports::DNS {
                if let Packet::Dns { msg, .. } = &pkt {
                    if msg.is_response && msg.authoritative {
                        if let Some(answer) = msg.first_answer_a() {
                            if self.in_domain_eids(answer) {
                                self.intercept_dns_reply(ctx, pkt, dst, answer);
                                return;
                            }
                        }
                    }
                }
            }
        }
        // Everything else: transparent bump-in-the-wire forward.
        self.stats.forwarded += 1;
        let d = self.cfg.forward_delay;
        self.release_later(ctx, d, other, pkt);
    }

    fn on_crash(&mut self, _ctx: &mut Ctx<'_, Packet>) {
        // A PCE crash loses everything computed at runtime: the flow
        // database, the IPC-learned requester map, packets parked in the
        // forwarding queue, and the IRC engine's booked flows. The
        // static configuration is provisioned state and survives; stats
        // and push times model the operator's monitoring box.
        self.db.clear();
        self.pending_requesters.clear();
        self.release_queue.clear();
        self.irc = IrcEngine::new(self.cfg.providers.clone(), self.cfg.policy);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, token: u64) {
        if token == TOKEN_RELEASE {
            if let Some((port, pkt)) = self.release_queue.pop_front() {
                ctx.send(port, pkt);
            }
        } else if token == TOKEN_TAKEOVER {
            // Standby promotion: re-install every mirrored flow at the
            // local ITRs so state lost with the primary is re-pushed.
            let flows: Vec<FlowMapping> = self.db.values().copied().collect();
            ctx.trace(format!(
                "PCE {} takes over: re-pushing {} flows",
                self.cfg.addr,
                flows.len()
            ));
            for flow in flows {
                self.push_flow(ctx, flow, PceKind::MappingPush);
                self.stats.takeover_pushes += 1;
            }
        } else if token & TOKEN_PROVIDER_BASE == TOKEN_PROVIDER_BASE {
            let provider = (token & 0xffff) as usize;
            let up = token & TOKEN_PROVIDER_UP_BIT != 0;
            if provider < self.irc.providers().len() {
                self.provider_reachability_changed(ctx, provider, up);
            }
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lispwire::dnswire::Message;
    use lispwire::pcewire::IpcQueryNotice;
    use netsim::{LinkCfg, Sim};

    fn a(o: [u8; 4]) -> Ipv4Address {
        Ipv4Address(o)
    }

    fn pce_d_config() -> PceConfig {
        PceConfig::new(
            a([12, 0, 0, 200]),
            vec![Prefix::new(a([101, 0, 0, 0]), 8)],
            vec![a([12, 0, 0, 1]), a([13, 0, 0, 1])],
            vec![
                Provider::new("X", a([12, 0, 0, 1]), 100.0),
                Provider::new("Y", a([13, 0, 0, 1]), 100.0),
            ],
        )
    }

    /// Node that feeds packets into a PCE port and records what comes out
    /// the attached link.
    struct Tap {
        outbox: Vec<Packet>,
        pub received: Vec<Packet>,
    }
    impl Node<Packet> for Tap {
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, token: u64) {
            if let Some(p) = self.outbox.get(token as usize) {
                ctx.send(0, p.clone());
            }
        }
        fn on_packet(&mut self, _ctx: &mut Ctx<'_, Packet>, _p: PortId, pkt: Packet) {
            self.received.push(pkt);
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    fn world(cfg: PceConfig) -> (Sim<Packet>, netsim::NodeId, netsim::NodeId, netsim::NodeId) {
        let mut sim: Sim<Packet> = Sim::new(2);
        sim.trace.enable();
        let dns_side = sim.add_node(
            "dns-side",
            Box::new(Tap {
                outbox: vec![],
                received: vec![],
            }),
        );
        let net_side = sim.add_node(
            "net-side",
            Box::new(Tap {
                outbox: vec![],
                received: vec![],
            }),
        );
        let pce = sim.add_node("pce", Box::new(Pce::new(cfg)));
        // PCE port 0 = DNS side, port 1 = network side.
        sim.connect(pce, dns_side, LinkCfg::ipc());
        sim.connect(pce, net_side, LinkCfg::lan());
        (sim, pce, dns_side, net_side)
    }

    fn auth_reply_packet(answer: Ipv4Address, reply_dst: Ipv4Address) -> Packet {
        use lispwire::dnswire::{Name, Record};
        let q = Message::query_a(42, Name::parse_str("host.d.example").unwrap(), false);
        let mut r = Message::response_to(&q);
        r.authoritative = true;
        r.answers.push(Record::a(
            Name::parse_str("host.d.example").unwrap(),
            answer,
            300,
        ));
        IpStack::new(a([12, 0, 0, 53])).dns(ports::DNS, reply_dst, 32853, r)
    }

    #[test]
    fn step6_intercepts_matching_reply() {
        let (mut sim, pce, dns_side, net_side) = world(pce_d_config());
        let reply = auth_reply_packet(a([101, 0, 0, 7]), a([10, 0, 0, 53]));
        sim.node_mut::<Tap>(dns_side).outbox = vec![reply];
        sim.schedule_timer(dns_side, Ns::ZERO, 0);
        sim.run();
        let p = sim.node_mut::<Pce>(pce);
        assert_eq!(p.stats.dns_intercepts, 1);
        assert_eq!(p.stats.forwarded, 0);
        let out = sim.node_ref::<Tap>(net_side).received.clone();
        assert_eq!(out.len(), 1);
        match &out[0] {
            Packet::Pce {
                ip,
                ports: p,
                msg:
                    PceMsg::DnsMapping {
                        pce_d,
                        mapping,
                        dns_reply,
                    },
            } => {
                assert_eq!(ip.dst, a([10, 0, 0, 53]));
                assert_eq!(p.dst, ports::PCE_MAP);
                assert_eq!(*pce_d, a([12, 0, 0, 200]));
                assert_eq!(mapping.eid_prefix, a([101, 0, 0, 7]));
                assert_eq!(mapping.locators.len(), 2);
                // The original reply is carried verbatim.
                assert!(matches!(**dns_reply, Packet::Dns { .. }));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn non_matching_reply_passes_through() {
        let (mut sim, pce, dns_side, net_side) = world(pce_d_config());
        // Answer outside the domain's EID space.
        let reply = auth_reply_packet(a([55, 0, 0, 7]), a([10, 0, 0, 53]));
        sim.node_mut::<Tap>(dns_side).outbox = vec![reply.clone()];
        sim.schedule_timer(dns_side, Ns::ZERO, 0);
        sim.run();
        assert_eq!(sim.node_mut::<Pce>(pce).stats.dns_intercepts, 0);
        let out = sim.node_ref::<Tap>(net_side).received.clone();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], reply, "forwarded byte-identical");
    }

    #[test]
    fn step7_decap_forwards_and_pushes() {
        // PCE_S for domain S (EIDs 100/8, ITRs at 10.0.0.1 & 11.0.0.1).
        let cfg = PceConfig::new(
            a([10, 0, 0, 200]),
            vec![Prefix::new(a([100, 0, 0, 0]), 8)],
            vec![a([10, 0, 0, 1]), a([11, 0, 0, 1])],
            vec![
                Provider::new("A", a([10, 0, 0, 1]), 100.0),
                Provider::new("B", a([11, 0, 0, 1]), 100.0),
            ],
        );
        let (mut sim, pce, dns_side, net_side) = world(cfg);

        // First the IPC notice: E_S asked for host.d.example.
        let notice = IpcQueryNotice {
            client: a([100, 0, 0, 5]),
            qname: "host.d.example".into(),
        };
        let ipc_pkt = IpStack::new(a([10, 0, 0, 53])).pce(
            ports::PCE_IPC,
            a([10, 0, 0, 200]),
            ports::PCE_IPC,
            PceMsg::Ipc(notice),
        );
        // Then the port-P packet from PCE_D.
        let inner_reply = auth_reply_packet(a([101, 0, 0, 7]), a([10, 0, 0, 53]));
        let mapping = MapRecord {
            eid_prefix: a([101, 0, 0, 7]),
            prefix_len: 32,
            ttl_minutes: 60,
            locators: vec![Locator::new(a([12, 0, 0, 1]), 1, 100)],
        };
        let p_msg = PceMsg::DnsMapping {
            pce_d: a([12, 0, 0, 200]),
            mapping,
            dns_reply: Box::new(inner_reply),
        };
        let p_pkt = IpStack::new(a([12, 0, 0, 200])).pce(
            ports::PCE_MAP,
            a([10, 0, 0, 53]),
            ports::PCE_MAP,
            p_msg,
        );

        sim.node_mut::<Tap>(dns_side).outbox = vec![ipc_pkt];
        sim.node_mut::<Tap>(net_side).outbox = vec![p_pkt];
        sim.schedule_timer(dns_side, Ns::ZERO, 0);
        sim.schedule_timer(net_side, Ns::from_ms(1), 0);
        sim.run();

        let p = sim.node_mut::<Pce>(pce);
        assert_eq!(p.stats.ipc_notices, 1);
        assert_eq!(p.stats.p_decaps, 1);
        assert_eq!(p.stats.pushes_sent, 2, "pushed to both ITRs");
        assert_eq!(p.stats.unknown_requester, 0);
        assert_eq!(p.db.len(), 1);
        let flow = p.db[&(a([100, 0, 0, 5]), a([101, 0, 0, 7]))];
        assert_eq!(flow.rloc_d, a([12, 0, 0, 1]));
        assert!(flow.rloc_s == a([10, 0, 0, 1]) || flow.rloc_s == a([11, 0, 0, 1]));

        // 7a: the DNS server side got the original reply.
        let dns_out = sim.node_ref::<Tap>(dns_side).received.clone();
        assert_eq!(dns_out.len(), 1);
        match &dns_out[0] {
            Packet::Dns { ip, ports: p, .. } => {
                assert_eq!(p.src, ports::DNS);
                assert_eq!(ip.dst, a([10, 0, 0, 53]));
            }
            other => panic!("unexpected {other:?}"),
        }
        // 7b: the net side carried two pushes.
        let net_out = sim.node_ref::<Tap>(net_side).received.clone();
        let pushes: Vec<_> = net_out
            .iter()
            .filter(|b| matches!(b.udp_ports(), Some(p) if p.dst == ports::PCE_MAP))
            .collect();
        assert_eq!(pushes.len(), 2);
    }

    #[test]
    fn step7_without_ipc_counts_unknown() {
        let cfg = PceConfig::new(
            a([10, 0, 0, 200]),
            vec![Prefix::new(a([100, 0, 0, 0]), 8)],
            vec![a([10, 0, 0, 1])],
            vec![Provider::new("A", a([10, 0, 0, 1]), 100.0)],
        );
        let (mut sim, pce, _dns_side, net_side) = world(cfg);
        let inner_reply = auth_reply_packet(a([101, 0, 0, 7]), a([10, 0, 0, 53]));
        let mapping = MapRecord::host(a([101, 0, 0, 7]), a([12, 0, 0, 1]), 60);
        let p_msg = PceMsg::DnsMapping {
            pce_d: a([12, 0, 0, 200]),
            mapping,
            dns_reply: Box::new(inner_reply),
        };
        let p_pkt = IpStack::new(a([12, 0, 0, 200])).pce(
            ports::PCE_MAP,
            a([10, 0, 0, 53]),
            ports::PCE_MAP,
            p_msg,
        );
        sim.node_mut::<Tap>(net_side).outbox = vec![p_pkt];
        sim.schedule_timer(net_side, Ns::ZERO, 0);
        sim.run();
        let p = sim.node_mut::<Pce>(pce);
        assert_eq!(p.stats.p_decaps, 1);
        assert_eq!(p.stats.unknown_requester, 1);
        assert_eq!(p.stats.pushes_sent, 0);
    }

    #[test]
    fn ablation_push_to_one_itr() {
        let mut cfg = PceConfig::new(
            a([10, 0, 0, 200]),
            vec![Prefix::new(a([100, 0, 0, 0]), 8)],
            vec![a([10, 0, 0, 1]), a([11, 0, 0, 1])],
            vec![
                Provider::new("A", a([10, 0, 0, 1]), 100.0),
                Provider::new("B", a([11, 0, 0, 1]), 100.0),
            ],
        );
        cfg.push_to_all_itrs = false;
        let (mut sim, pce, dns_side, net_side) = world(cfg);
        let notice = IpcQueryNotice {
            client: a([100, 0, 0, 5]),
            qname: "host.d.example".into(),
        };
        let ipc_pkt = IpStack::new(a([10, 0, 0, 53])).pce(
            ports::PCE_IPC,
            a([10, 0, 0, 200]),
            ports::PCE_IPC,
            PceMsg::Ipc(notice),
        );
        let inner_reply = auth_reply_packet(a([101, 0, 0, 7]), a([10, 0, 0, 53]));
        let p_msg = PceMsg::DnsMapping {
            pce_d: a([12, 0, 0, 200]),
            mapping: MapRecord::host(a([101, 0, 0, 7]), a([12, 0, 0, 1]), 60),
            dns_reply: Box::new(inner_reply),
        };
        let p_pkt = IpStack::new(a([12, 0, 0, 200])).pce(
            ports::PCE_MAP,
            a([10, 0, 0, 53]),
            ports::PCE_MAP,
            p_msg,
        );
        sim.node_mut::<Tap>(dns_side).outbox = vec![ipc_pkt];
        sim.node_mut::<Tap>(net_side).outbox = vec![p_pkt];
        sim.schedule_timer(dns_side, Ns::ZERO, 0);
        sim.schedule_timer(net_side, Ns::from_ms(1), 0);
        sim.run();
        assert_eq!(sim.node_mut::<Pce>(pce).stats.pushes_sent, 1);
    }

    #[test]
    fn on_demand_delays_step6() {
        let run = |precompute: bool| -> Ns {
            let mut cfg = pce_d_config();
            cfg.precompute = precompute;
            let (mut sim, _pce, dns_side, net_side) = world(cfg);
            let reply = auth_reply_packet(a([101, 0, 0, 7]), a([10, 0, 0, 53]));
            sim.node_mut::<Tap>(dns_side).outbox = vec![reply];
            sim.schedule_timer(dns_side, Ns::ZERO, 0);
            sim.run();
            assert_eq!(sim.node_ref::<Tap>(net_side).received.len(), 1);
            sim.now()
        };
        let fast = run(true);
        let slow = run(false);
        assert_eq!(slow - fast, Ns::from_ms(2));
    }

    #[test]
    fn provider_failure_repaths_and_pushes_remote_fix() {
        let (mut sim, pce, _dns_side, net_side) = world(pce_d_config());
        // A served inbound flow: remote E_S ↔ local E_D riding provider X.
        let flow = FlowMapping {
            source_eid: a([101, 0, 0, 7]),
            dest_eid: a([100, 0, 0, 5]),
            rloc_s: a([12, 0, 0, 1]),  // local end: provider X (fails)
            rloc_d: a([10, 0, 0, 99]), // remote end
            ttl_minutes: 60,
        };
        sim.node_mut::<Pce>(pce)
            .db
            .insert((flow.source_eid, flow.dest_eid), flow);
        sim.schedule_timer(pce, Ns::from_ms(10), Pce::provider_event_token(0, false));
        sim.run();

        let p = sim.node_mut::<Pce>(pce);
        assert_eq!(p.stats.provider_events, 1);
        assert_eq!(p.stats.repaths, 1);
        assert!(!p.irc.providers()[0].up);
        let updated = p.db[&(a([101, 0, 0, 7]), a([100, 0, 0, 5]))];
        assert_eq!(updated.rloc_s, a([13, 0, 0, 1]), "re-homed onto Y");
        // Local pushes to both ITRs plus the remote fix.
        assert_eq!(p.stats.pushes_sent, 3);
        let out = sim.node_ref::<Tap>(net_side).received.clone();
        let remote_fix = out
            .iter()
            .find_map(|b| match b {
                Packet::Pce {
                    ip,
                    msg: PceMsg::Flow(msg),
                    ..
                } if ip.dst == a([10, 0, 0, 99]) => Some(*msg),
                _ => None,
            })
            .expect("remote tunnel end must be told the new RLOC");
        assert_eq!(remote_fix.kind, PceKind::MappingPush);
        // The remote's forward direction (E_S -> E_D) now targets Y.
        assert_eq!(remote_fix.mapping.source_eid, a([100, 0, 0, 5]));
        assert_eq!(remote_fix.mapping.dest_eid, a([101, 0, 0, 7]));
        assert_eq!(remote_fix.mapping.rloc_d, a([13, 0, 0, 1]));
    }

    #[test]
    fn provider_recovery_only_marks_up() {
        let (mut sim, pce, _dns_side, _net_side) = world(pce_d_config());
        sim.schedule_timer(pce, Ns::from_ms(1), Pce::provider_event_token(0, false));
        sim.schedule_timer(pce, Ns::from_ms(2), Pce::provider_event_token(0, true));
        sim.run();
        let p = sim.node_mut::<Pce>(pce);
        assert_eq!(p.stats.provider_events, 2);
        assert!(p.irc.providers()[0].up);
        assert_eq!(p.stats.repaths, 0);
    }

    #[test]
    fn reverse_sync_updates_db() {
        let (mut sim, pce, _dns_side, net_side) = world(pce_d_config());
        let flow = FlowMapping {
            source_eid: a([101, 0, 0, 7]),
            dest_eid: a([100, 0, 0, 5]),
            rloc_s: a([12, 0, 0, 1]),
            rloc_d: a([10, 0, 0, 1]),
            ttl_minutes: 60,
        };
        let msg = PceFlowMsg {
            kind: PceKind::ReverseSync,
            mapping: flow,
        };
        let pkt = IpStack::new(a([12, 0, 0, 1])).pce(
            ports::ETR_SYNC,
            a([12, 0, 0, 200]),
            ports::ETR_SYNC,
            PceMsg::Flow(msg),
        );
        sim.node_mut::<Tap>(net_side).outbox = vec![pkt];
        sim.schedule_timer(net_side, Ns::ZERO, 0);
        sim.run();
        let p = sim.node_mut::<Pce>(pce);
        assert_eq!(p.stats.reverse_syncs_received, 1);
        assert_eq!(p.db.len(), 1);
    }
}
