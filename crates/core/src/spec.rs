//! Declarative scenario construction: describe a world, then build it.
//!
//! The paper's Fig. 1 topology used to be hand-welded into a builder
//! with fixed-arity handles (two sites, four providers, `[u64; 4]`
//! byte counters). This module replaces that with three declarative
//! layers:
//!
//! * [`TopologySpec`] — *where things are*: a list of [`SiteSpec`]s
//!   (EID prefix, K provider border routers with per-link OWD /
//!   bandwidth / drop probability, host population, client or server
//!   role), the DNS-hierarchy depth, and mapping-system placement.
//! * [`ScenarioSpec`] — *what runs on it*: the control plane
//!   ([`CpKind`]), the workload ([`Workload`], reusing
//!   [`PoissonArrivals`]/[`ZipfPicker`]), mapping TTLs and granularity,
//!   and the PCE ablation knobs.
//! * [`ScenarioSpec::build`] — `spec + seed → `[`World`]: the running
//!   simulation plus handles keyed by **site and provider name**
//!   instead of fixed struct fields, so the same experiment code works
//!   for 2 sites or 200.
//!
//! [`ScenarioSpec::fig1`] is a preset that reproduces the paper's
//! Fig. 1 world *exactly* (same node names, ordering, addressing and
//! therefore byte-identical experiment tables — pinned by
//! `tests/golden_compat.rs`). [`ScenarioSpec::multi_site`] generates
//! N-destination-site worlds for the scale experiments (E9).

use crate::adversary::{AttackNode, ScanRng};
use crate::hosts::{FlowMode, FlowSpec, ServerHost, TrafficHost};
use crate::pce::{Pce, PceConfig};
use crate::scenario::{addrs, CpKind, FlowRouter};
use crate::workload::{PoissonArrivals, ZipfPicker};
use inet::stack::IpStack;
use inet::{Prefix, Router};
use ircte::Provider;
pub use ircte::SelectionPolicy;
use lispdp::{CacheSpec, CpMode, DefenseCfg, MissPolicy, RlocProbeCfg, Xtr, XtrConfig};
use lispwire::dnswire::Name;
use lispwire::lispctl::{Locator, MapRecord, MapReply};
use lispwire::packet::CtlMsg;
use lispwire::{ports, Ipv4Address, Packet};
use mapsys::alt::linear_chain;
use mapsys::api::{MappingDb, SiteEntry};
use mapsys::{AltRouter, ConsNode, GuardCfg, MapResolver, NerdAuthority, RequestGuard};
use netsim::{DownPolicy, LinkCfg, NodeId, Ns, PortId, Sim};
use simdns::zone::{Zone, ZoneStore};
use simdns::{AuthServer, Resolver, ResolverConfig};

/// What a site does in the scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteRole {
    /// Runs a [`TrafficHost`] plus a recursive resolver: originates the
    /// workload's flows.
    Client,
    /// Runs a [`ServerHost`] plus an authoritative DNS server for the
    /// site's zone: terminates flows.
    Server,
}

/// One provider (border-router) attachment of a site.
#[derive(Debug, Clone)]
pub struct ProviderSpec {
    /// Provider name; the border router is named `xTR-{name}`.
    pub name: String,
    /// The border router's RLOC (WAN-side address).
    pub rloc: Ipv4Address,
    /// One-way delay of the provider↔core link.
    pub owd: Ns,
    /// Provider link bandwidth (bps).
    pub bandwidth_bps: u64,
    /// Random drop probability on the provider link.
    pub drop_prob: f64,
    /// RLOC-space prefix announced for this provider at the core.
    pub core_route: Prefix,
    /// Site-internal RLOC subnet (DNS server, PCE live here).
    pub internal_prefix: Prefix,
}

impl ProviderSpec {
    /// A provider with Fig. 1 defaults: 30 ms OWD, 1 Gbps, no loss, a
    /// `/8` core route and a `/24` internal subnet derived from `rloc`.
    pub fn new(name: &str, rloc: Ipv4Address) -> Self {
        let o = rloc.0;
        Self {
            name: name.to_string(),
            rloc,
            owd: Ns::from_ms(30),
            bandwidth_bps: 1_000_000_000,
            drop_prob: 0.0,
            core_route: Prefix::new(Ipv4Address::new(o[0], 0, 0, 0), 8),
            internal_prefix: Prefix::new(Ipv4Address::new(o[0], o[1], o[2], 0), 24),
        }
    }

    /// Same, but announcing a `/16` at the core — the scheme generated
    /// multi-site topologies use so provider routes never collide.
    pub fn new_slash16(name: &str, rloc: Ipv4Address) -> Self {
        let o = rloc.0;
        Self {
            core_route: Prefix::new(Ipv4Address::new(o[0], o[1], 0, 0), 16),
            ..Self::new(name, rloc)
        }
    }
}

/// One site: an autonomous domain with its own EID prefix, providers,
/// hosts and DNS presence.
#[derive(Debug, Clone)]
pub struct SiteSpec {
    /// Site name (`"S"`, `"D"`, `"D17"`, …). Node names derive from it.
    pub name: String,
    /// The site's EID prefix.
    pub eid_prefix: Prefix,
    /// Border routers, one per provider. At least one required.
    pub providers: Vec<ProviderSpec>,
    /// Client (traffic source) or server (traffic sink).
    pub role: SiteRole,
    /// Host population. For server sites this is the number of distinct
    /// destination EIDs (`host-0 … host-{n-1}` in the site zone).
    pub hosts: usize,
    /// Per-site map-cache override (`None` = the scenario-wide
    /// [`ScenarioSpec::cache`]).
    pub cache: Option<CacheSpec>,
}

impl SiteSpec {
    /// A client site (one traffic host, a recursive resolver, no zone).
    pub fn client(name: &str, eid_prefix: Prefix, providers: Vec<ProviderSpec>) -> Self {
        Self {
            name: name.to_string(),
            eid_prefix,
            providers,
            role: SiteRole::Client,
            hosts: 1,
            cache: None,
        }
    }

    /// A server site with `hosts` destination EIDs and its own zone.
    pub fn server(
        name: &str,
        eid_prefix: Prefix,
        providers: Vec<ProviderSpec>,
        hosts: usize,
    ) -> Self {
        Self {
            name: name.to_string(),
            eid_prefix,
            providers,
            role: SiteRole::Server,
            hosts,
            cache: None,
        }
    }

    fn eid_with_last_octet(&self, last: u8) -> Ipv4Address {
        let o = self.eid_prefix.addr().0;
        Ipv4Address::new(o[0], o[1], o[2], last)
    }

    /// The address of this site's single client / server host.
    pub fn host_addr(&self) -> Ipv4Address {
        match self.role {
            SiteRole::Client => self.eid_with_last_octet(5),
            SiteRole::Server => self.eid_with_last_octet(7),
        }
    }

    /// Destination EID of `host-{i}` (server sites).
    pub fn dest_eid(&self, i: usize) -> Ipv4Address {
        self.eid_with_last_octet(10u8.wrapping_add((i % 200) as u8))
    }

    /// The site's DNS server address (first provider's internal subnet).
    pub fn dns_addr(&self) -> Ipv4Address {
        let o = self.providers[0].internal_prefix.addr().0;
        Ipv4Address::new(o[0], o[1], o[2], 53)
    }

    /// The site's PCE address (first provider's internal subnet).
    pub fn pce_addr(&self) -> Ipv4Address {
        let o = self.providers[0].internal_prefix.addr().0;
        Ipv4Address::new(o[0], o[1], o[2], 200)
    }

    /// The DNS zone label of a server site (lower-cased site name).
    pub fn zone_label(&self) -> String {
        self.name.to_lowercase()
    }
}

/// Where things are: sites around a core, plus DNS and mapping-system
/// placement.
#[derive(Debug, Clone)]
pub struct TopologySpec {
    /// All sites, in construction order.
    pub sites: Vec<SiteSpec>,
    /// One-way delay of DNS-infrastructure links (root/TLD ↔ core).
    pub infra_owd: Ns,
    /// Drop probability on DNS-infrastructure links.
    pub infra_drop_prob: f64,
    /// DNS delegation levels above the site-authoritative servers:
    /// `2` (default) is the paper's root + `example` TLD; `1` lets the
    /// root delegate site zones directly; deeper values chain extra
    /// servers (`sub.example`, `sub2.sub.example`, …).
    pub dns_depth: usize,
    /// Mapping-system placement: one-way delay of the mapping-system
    /// infrastructure links (MR / NERD authority / ALT & CONS overlay
    /// nodes ↔ core). `None` places them at `infra_owd`.
    pub mapsys_owd: Option<Ns>,
}

impl TopologySpec {
    /// Zone name served by each DNS-infrastructure level, root (`""`)
    /// first. Site zones live under the deepest level's name — both the
    /// delegation chain and the site-zone suffix derive from this one
    /// list so they cannot drift apart.
    pub fn level_suffixes(&self) -> Vec<String> {
        let depth = self.dns_depth.max(1);
        let mut suffixes = vec![String::new()]; // root
        for level in 1..depth {
            let mut s = "example".to_string();
            for k in 0..level - 1 {
                let label = if k == 0 {
                    "sub".to_string()
                } else {
                    format!("sub{}", k + 1)
                };
                s = format!("{label}.{s}");
            }
            suffixes.push(s);
        }
        suffixes
    }

    /// The zone suffix under which site zones live, per [`Self::dns_depth`]:
    /// depth 1 → `""` (site zones are TLDs), depth 2 → `"example"`,
    /// depth 3 → `"sub.example"`, depth 4 → `"sub2.sub.example"`, …
    pub fn zone_suffix(&self) -> String {
        self.level_suffixes().pop().unwrap_or_default()
    }

    /// Fully-qualified zone name of a server site.
    pub fn site_zone(&self, site: &SiteSpec) -> String {
        let suffix = self.zone_suffix();
        if suffix.is_empty() {
            site.zone_label()
        } else {
            format!("{}.{}", site.zone_label(), suffix)
        }
    }

    /// Fully-qualified name of `host-{i}` at a server site.
    pub fn host_name(&self, site: &SiteSpec, i: usize) -> String {
        format!("host-{i}.{}", self.site_zone(site))
    }
}

/// How the client site exercises the network.
#[derive(Debug, Clone)]
pub enum Workload {
    /// An explicit flow script (full control; Fig. 1 experiments).
    Explicit(Vec<FlowSpec>),
    /// Poisson flow arrivals with Zipf *cross-site* destination
    /// popularity: the destination site is Zipf(s)-ranked in spec
    /// order, the host within the site is uniform.
    PoissonZipf {
        /// Number of flows to generate.
        flows: usize,
        /// Mean arrival rate (flows per second).
        rate_per_sec: f64,
        /// Zipf skew across destination sites (0 = uniform).
        zipf_s: f64,
        /// Traffic shape of every flow.
        mode: FlowMode,
    },
}

/// One timed topology/mapping mutation.
#[derive(Debug, Clone)]
pub struct DynEvent {
    /// Absolute simulation time at which the event fires.
    pub at: Ns,
    /// What happens.
    pub kind: DynEventKind,
}

/// The kinds of timed mutation the dynamics subsystem can apply
/// (DESIGN.md §7). Sites and providers are addressed by spec name.
#[derive(Debug, Clone)]
pub enum DynEventKind {
    /// The provider's WAN link goes administratively down (both
    /// directions). No control-plane reaction is scheduled — raw link
    /// churn for testing transport behaviour.
    LinkDown {
        /// Site name.
        site: String,
        /// Provider name within the site.
        provider: String,
    },
    /// The provider's WAN link comes back up (stalled packets flush).
    LinkUp {
        /// Site name.
        site: String,
        /// Provider name within the site.
        provider: String,
    },
    /// A locator failure with its full control-plane aftermath: the
    /// provider link goes down permanently, the site IGP re-routes its
    /// default egress and notifies the domain PCE after
    /// [`DynamicsSpec::detection_delay`], and the site re-registers its
    /// mappings onto the next surviving provider after
    /// [`DynamicsSpec::reregister_delay`] (Map-Resolver table update,
    /// NERD update + full re-push, ALT/CONS delivery re-point).
    RlocFail {
        /// Site name.
        site: String,
        /// Provider name within the site.
        provider: String,
    },
    /// Mapping churn without a failure: re-register the site's mappings
    /// to point at the named provider at the event time.
    Remap {
        /// Site name.
        site: String,
        /// Provider name within the site.
        provider: String,
    },
    /// The mapping-infrastructure node serving `site` crashes: volatile
    /// state is lost (`Node::on_crash`), deliveries addressed to it are
    /// dropped, and — when [`ScenarioSpec::replicas`] arms a standby —
    /// failover fires after [`ReplicaSpec::detection_delay`]. Which node
    /// this means depends on the control plane: the shared Map-Resolver
    /// (pull variants), the NERD authority, the ALT entry gateway, the
    /// site's CONS CAR, or the site's PCE bump. `NoLisp` has no mapping
    /// node, so the event is a no-op there.
    NodeDown {
        /// Site whose mapping service is targeted (selects the CAR /
        /// PCE in per-site planes; ignored by shared-node planes).
        site: String,
    },
    /// The crashed mapping node restarts (`Node::on_restart`): it comes
    /// back with whatever its plane's state-loss policy preserves
    /// (DESIGN.md §13) and resumes serving. Traffic that failed over to
    /// a standby stays there — failover is sticky.
    NodeUp {
        /// Same site key as the matching [`DynEventKind::NodeDown`].
        site: String,
    },
}

/// Deterministic, seed-driven schedule of topology and mapping dynamics
/// layered onto a [`ScenarioSpec`] (DESIGN.md §7). Every mutation is
/// applied through the engine's `(time, seq)` event order — link-state
/// changes as engine `LinkAdmin` events, node-state changes as timers
/// pre-scheduled at build — so two runs of the same spec and seed stay
/// byte-identical, failures included.
#[derive(Debug, Clone)]
pub struct DynamicsSpec {
    /// The timed mutations, in any order.
    pub events: Vec<DynEvent>,
    /// Enable xTR RLOC probing (liveness detection on every referenced
    /// locator; required for pull systems to notice a dead tunnel end).
    pub rloc_probing: Option<RlocProbeCfg>,
    /// How long the site-internal plane (IGP → PCE, IGP → default
    /// route) takes to learn of a border failure.
    pub detection_delay: Ns,
    /// How long the site takes to re-register its mappings with the
    /// mapping system after a locator failure.
    pub reregister_delay: Ns,
    /// What provider WAN links do with packets while down.
    pub down_policy: DownPolicy,
}

impl Default for DynamicsSpec {
    fn default() -> Self {
        Self {
            events: Vec::new(),
            rloc_probing: None,
            detection_delay: Ns::from_ms(50),
            reregister_delay: Ns::from_ms(150),
            down_policy: DownPolicy::Drop,
        }
    }
}

impl DynamicsSpec {
    /// An empty schedule with the default delays and no probing.
    pub fn new() -> Self {
        Self::default()
    }

    /// The canonical failure-recovery schedule (experiment E10): RLOC
    /// probing on every xTR, and one permanent locator failure of
    /// `provider` at `site`, at time `at`.
    pub fn rloc_failure(site: &str, provider: &str, at: Ns) -> Self {
        Self {
            events: vec![DynEvent {
                at,
                kind: DynEventKind::RlocFail {
                    site: site.to_string(),
                    provider: provider.to_string(),
                },
            }],
            rloc_probing: Some(RlocProbeCfg::default()),
            ..Self::default()
        }
    }

    /// The canonical availability schedule (experiment E13): the
    /// mapping node serving `site` crashes at `down_at` and restarts at
    /// `up_at`. No RLOC probing — the data path is healthy throughout;
    /// only the mapping infrastructure blinks.
    pub fn mapsys_outage(site: &str, down_at: Ns, up_at: Ns) -> Self {
        Self::new()
            .with_event(
                down_at,
                DynEventKind::NodeDown {
                    site: site.to_string(),
                },
            )
            .with_event(
                up_at,
                DynEventKind::NodeUp {
                    site: site.to_string(),
                },
            )
    }

    /// Append an event, builder-style.
    pub fn with_event(mut self, at: Ns, kind: DynEventKind) -> Self {
        self.events.push(DynEvent { at, kind });
        self
    }
}

/// Warm-standby replication of the mapping infrastructure (DESIGN.md
/// §13). `Some(ReplicaSpec)` on [`ScenarioSpec::replicas`] adds one
/// standby twin per mapping role: a second Map-Resolver sharing the
/// registration database, a standby NERD authority that re-pushes on
/// promotion, a standby ALT entry gateway, a standby CONS CAR per
/// site, and (client sites only) a standby PCE bump warm-mirrored by
/// the primary. Failover is deterministic: xTRs walk their ordered
/// replica list on request exhaustion; infrastructure takeover timers
/// fire exactly [`ReplicaSpec::detection_delay`] after a
/// [`DynEventKind::NodeDown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicaSpec {
    /// Standby twins per mapping role. Currently 0 or 1 — the address
    /// plan reserves one twin per role.
    pub count: u32,
    /// How long death of a primary takes to detect: promotion /
    /// re-route timers fire this long after the crash.
    pub detection_delay: Ns,
    /// xTR failover stickiness: after failing over, new requests start
    /// at the resolver that last answered instead of re-trying the
    /// primary first.
    pub sticky_failover: bool,
}

impl Default for ReplicaSpec {
    fn default() -> Self {
        Self {
            count: 1,
            detection_delay: Ns::from_ms(200),
            sticky_failover: true,
        }
    }
}

/// xTR map-request retry shaping for the availability experiments. The
/// default (`None`/identity everywhere) leaves the xTR's own defaults
/// in place, so worlds built without a `RetrySpec` stay byte-identical.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrySpec {
    /// Map-request retransmit interval (`None` = xTR default, 1 s).
    pub retransmit: Option<Ns>,
    /// Attempts per resolver before rotating / giving up (`None` = 3).
    pub max_tries: Option<u32>,
    /// Exponential backoff multiplier between retransmits (1 = flat).
    pub backoff_multiplier: u32,
    /// Ceiling on any single backoff step.
    pub backoff_cap: Ns,
    /// Re-arm a fresh request cycle this long after exhausting every
    /// resolver (`None` = give up permanently, the historical default).
    pub cooldown: Option<Ns>,
}

impl Default for RetrySpec {
    fn default() -> Self {
        Self {
            retransmit: None,
            max_tries: None,
            backoff_multiplier: 1,
            backoff_cap: Ns::from_secs(30),
            cooldown: None,
        }
    }
}

/// One adversarial role layered onto a scenario (DESIGN.md §10).
///
/// Every role compiles at build time into a fully scripted
/// [`AttackNode`] (or, for [`AttackerSpec::Overclaim`], a config flag on
/// a legitimate xTR), so adversarial worlds replay byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub enum AttackerSpec {
    /// An in-site compromised host scanning randomized EIDs: each scan
    /// packet is a spoofed Map-Request-triggering probe that forces the
    /// site ITR to miss and signal. Targets mix live cross-site EIDs
    /// (cache thrash) and dead EIDs (resolver waste: each dead target
    /// costs the full retry budget).
    MapRequestFlood {
        /// Scan packets per second.
        rate_per_sec: f64,
        /// Total scan packets.
        packets: usize,
    },
    /// An off-site node spraying spoofed, unsolicited Map-Replies that
    /// claim every server site's prefix and point it at the attacker's
    /// own RLOC. Undefended xTRs install them and tunnel traffic into
    /// the attacker's sink.
    CachePoison {
        /// Spoofed replies per second (per victim xTR).
        rate_per_sec: f64,
        /// Spray rounds (each round re-poisons every victim).
        rounds: usize,
    },
    /// A *legitimate* ETR of `site` answering Map-Requests with a
    /// prefix truncated to `prefix_len` — claiming address space it
    /// does not own (the overclaiming attack of Saucez et al.).
    Overclaim {
        /// The misbehaving site's name.
        site: String,
        /// The too-broad prefix length it claims.
        prefix_len: u8,
    },
}

/// Which defenses are armed, scenario-wide (DESIGN.md §10). Default is
/// everything off — the pre-E12 worlds are reproduced bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct DefenseSpec {
    /// xTR-side defenses (nonce/origin verification, reply scope limit,
    /// negative caching, per-source rate limiting).
    pub xtr: DefenseCfg,
    /// Ingress guard on the mapping-system side: the Map-Resolver, the
    /// ALT gateway and every CONS CAR rate-limit per source EID; the
    /// resolver also negative-caches unresolvable targets.
    pub resolver_guard: Option<GuardCfg>,
}

impl DefenseSpec {
    /// The standard armed-defenses profile E12 measures: reply
    /// verification on, replies must be `/16` or finer, 5 s negative
    /// TTL, 16 requests/s per source at both the xTR and the resolver.
    pub fn armed() -> Self {
        Self {
            xtr: DefenseCfg {
                verify_replies: true,
                reply_scope_limit: Some(16),
                negative_ttl: Some(Ns::from_secs(5)),
                source_rate: Some(lispdp::SourceRateCfg {
                    window: Ns::from_secs(1),
                    max_requests: 16,
                }),
            },
            resolver_guard: Some(GuardCfg::standard()),
        }
    }
}

/// The full description of one runnable scenario: topology + control
/// plane + workload + mapping knobs + (optionally) timed dynamics.
///
/// Start from a preset and mutate, then [`ScenarioSpec::build`]:
///
/// ```
/// use pcelisp::prelude::*;
///
/// // The paper's Fig. 1 world under the PCE control plane.
/// let mut world = ScenarioSpec::fig1(CpKind::Pce).build(1);
/// assert_eq!(world.site("S").role, SiteRole::Client);
/// assert_eq!(world.site("D").provider_names, vec!["X", "Y"]);
///
/// world.start_flow(0);
/// world.sim.run_until(Ns::from_secs(5));
/// assert!(world.records()[0].setup_time().is_some());
/// ```
///
/// A failure-recovery scenario layers a [`DynamicsSpec`] on top:
///
/// ```
/// use pcelisp::prelude::*;
///
/// let mut spec = ScenarioSpec::multi_site(CpKind::Pce, 2, 2);
/// spec.dynamics = Some(DynamicsSpec::rloc_failure("D0", "D0a", Ns::from_secs(2)));
/// let world = spec.build(1); // schedules the failure deterministically
/// assert_eq!(world.sites.len(), 3); // client S + servers D0, D1
/// ```
#[derive(Debug, Clone)]
pub struct ScenarioSpec {
    /// The topology.
    pub topology: TopologySpec,
    /// The control plane installed.
    pub cp: CpKind,
    /// The workload driving the client site.
    pub workload: Workload,
    /// Map-cache TTL used by vanilla xTRs for their replies (minutes).
    pub mapping_ttl_minutes: u16,
    /// Register host-granular (/32) mappings instead of site prefixes.
    pub fine_grained_mappings: bool,
    /// PCE precompute claim on/off (ablation A2).
    pub pce_precompute: bool,
    /// PCE pushes to all ITRs (ablation A1 turns off).
    pub pce_push_all: bool,
    /// IRC selection policy of every PCE. The default,
    /// [`SelectionPolicy::WeightedBalance`], spreads flows across
    /// providers; failure experiments use a utilisation-blind policy
    /// (e.g. [`SelectionPolicy::MinCost`]) so the primary locator is
    /// the same provider every control plane registers.
    pub pce_policy: SelectionPolicy,
    /// The global EID space the xTRs classify against. `None` derives
    /// it from the site prefixes.
    pub eid_space: Option<Vec<Prefix>>,
    /// Timed topology/mapping dynamics (`None` = the static world every
    /// pre-dynamics experiment runs on).
    pub dynamics: Option<DynamicsSpec>,
    /// Scenario-wide map-cache shape of every xTR (capacity + eviction
    /// policy; [`SiteSpec::cache`] overrides per site). The default,
    /// unbounded, reproduces the pre-E12 worlds bit-for-bit.
    pub cache: CacheSpec,
    /// Which defenses are armed (default: none).
    pub defense: DefenseSpec,
    /// Adversarial roles layered onto the world (default: none).
    pub attackers: Vec<AttackerSpec>,
    /// Warm-standby replication of the mapping infrastructure
    /// (`None` = the historical single-instance worlds, bit-for-bit).
    pub replicas: Option<ReplicaSpec>,
    /// xTR map-request retry shaping (`None` = xTR defaults).
    pub retry: Option<RetrySpec>,
}

impl ScenarioSpec {
    /// Largest `dest_sites` the [`Self::multi_site`] address plan holds:
    /// EID first octets walk `120..=128` and provider first octets
    /// `24..=41`, clear of the `8.x`/`9.x` infrastructure space and of
    /// each other.
    pub const MAX_DEST_SITES: usize = 2048;

    /// The paper's Fig. 1 world: source domain **S** (EIDs `100/8`,
    /// providers **A** `10/8` and **B** `11/8`), destination domain
    /// **D** (EIDs `101/8`, providers **X** `12/8`, **Y** `13/8`),
    /// a three-level DNS hierarchy, and the given control plane. The
    /// default workload is one TCP flow to `host-0.d.example`.
    pub fn fig1(cp: CpKind) -> Self {
        let site_s = SiteSpec::client(
            "S",
            Prefix::new(Ipv4Address::new(100, 0, 0, 0), 8),
            vec![
                ProviderSpec::new("A", addrs::XTR_A),
                ProviderSpec::new("B", addrs::XTR_B),
            ],
        );
        let site_d = SiteSpec::server(
            "D",
            Prefix::new(Ipv4Address::new(101, 0, 0, 0), 8),
            vec![
                ProviderSpec::new("X", addrs::XTR_X),
                ProviderSpec::new("Y", addrs::XTR_Y),
            ],
            8,
        );
        Self {
            topology: TopologySpec {
                sites: vec![site_s, site_d],
                infra_owd: Ns::from_ms(15),
                infra_drop_prob: 0.0,
                dns_depth: 2,
                mapsys_owd: None,
            },
            cp,
            workload: Workload::Explicit(vec![FlowSpec {
                start: Ns::ZERO,
                qname: Name::parse_str("host-0.d.example").expect("valid"),
                mode: FlowMode::Tcp {
                    packets: 4,
                    interval: Ns::from_ms(1),
                    size: 200,
                },
            }]),
            mapping_ttl_minutes: 60,
            fine_grained_mappings: false,
            pce_precompute: true,
            pce_push_all: true,
            // The figure's xTRs classify against one covering prefix.
            eid_space: Some(vec![Prefix::new(Ipv4Address::new(100, 0, 0, 0), 7)]),
            pce_policy: SelectionPolicy::WeightedBalance,
            dynamics: None,
            cache: CacheSpec::default(),
            defense: DefenseSpec::default(),
            attackers: Vec::new(),
            replicas: None,
            retry: None,
        }
    }

    /// A generated scale topology: one client site `S` plus
    /// `dest_sites` server sites `D0 … D{n-1}`, each with two providers
    /// and `hosts_per_site` destination EIDs, on non-colliding `/16`
    /// address plans. The default workload is Poisson arrivals with
    /// Zipf(1.0) cross-site popularity, `3 × dest_sites` flows.
    ///
    /// The address plan spans site indexes beyond one octet by stepping
    /// the *first* octet every 256 sites (EIDs walk `120.x`, `121.x`, …;
    /// provider RLOC pairs walk `24.x`/`25.x`, then `26.x`/`27.x`, …),
    /// so worlds up to [`Self::MAX_DEST_SITES`] sites stay collision-free
    /// while plans for the first 255 sites are bit-identical to the
    /// historical single-octet layout (E9/E10 goldens).
    ///
    /// # Panics
    /// Panics if `dest_sites` is 0 or above [`Self::MAX_DEST_SITES`].
    pub fn multi_site(cp: CpKind, dest_sites: usize, hosts_per_site: usize) -> Self {
        assert!(
            (1..=Self::MAX_DEST_SITES).contains(&dest_sites),
            "dest_sites must be in 1..={}",
            Self::MAX_DEST_SITES
        );
        let providers_of = |idx: usize, name: &str| -> Vec<ProviderSpec> {
            let hi = (idx >> 8) as u8;
            let lo = (idx & 0xff) as u8;
            vec![
                ProviderSpec::new_slash16(
                    &format!("{name}a"),
                    Ipv4Address::new(24 + 2 * hi, lo, 0, 1),
                ),
                ProviderSpec::new_slash16(
                    &format!("{name}b"),
                    Ipv4Address::new(25 + 2 * hi, lo, 0, 1),
                ),
            ]
        };
        let eid_prefix_of = |idx: usize| -> Prefix {
            Prefix::new(
                Ipv4Address::new(120 + (idx >> 8) as u8, (idx & 0xff) as u8, 0, 0),
                16,
            )
        };
        let mut sites = vec![SiteSpec::client(
            "S",
            eid_prefix_of(0),
            providers_of(0, "S"),
        )];
        for i in 0..dest_sites {
            let name = format!("D{i}");
            sites.push(SiteSpec::server(
                &name,
                eid_prefix_of(i + 1),
                providers_of(i + 1, &name),
                hosts_per_site,
            ));
        }
        Self {
            topology: TopologySpec {
                sites,
                infra_owd: Ns::from_ms(15),
                infra_drop_prob: 0.0,
                dns_depth: 2,
                mapsys_owd: None,
            },
            cp,
            workload: Workload::PoissonZipf {
                flows: 3 * dest_sites,
                rate_per_sec: 2.0,
                zipf_s: 1.0,
                mode: FlowMode::Udp {
                    packets: 3,
                    interval: Ns::from_ms(2),
                    size: 300,
                },
            },
            mapping_ttl_minutes: 60,
            fine_grained_mappings: false,
            pce_precompute: true,
            pce_push_all: true,
            pce_policy: SelectionPolicy::WeightedBalance,
            eid_space: None,
            dynamics: None,
            cache: CacheSpec::default(),
            defense: DefenseSpec::default(),
            attackers: Vec::new(),
            replicas: None,
            retry: None,
        }
    }

    /// Mutate the spec in place, builder-style.
    pub fn with(mut self, f: impl FnOnce(&mut Self)) -> Self {
        f(&mut self);
        self
    }

    /// Set the one-way delay of every provider link.
    pub fn set_provider_owd(&mut self, owd: Ns) {
        for site in &mut self.topology.sites {
            for p in &mut site.providers {
                p.owd = owd;
            }
        }
    }

    /// Set provider bandwidths in site-major, provider-minor order
    /// (Fig. 1: `[A, B, X, Y]`). Extra entries are ignored; missing
    /// entries leave the provider unchanged.
    pub fn set_provider_bw(&mut self, bw: &[u64]) {
        let mut it = bw.iter();
        for site in &mut self.topology.sites {
            for p in &mut site.providers {
                if let Some(&b) = it.next() {
                    p.bandwidth_bps = b;
                }
            }
        }
    }

    /// Inject random loss on every provider and DNS-infrastructure WAN
    /// link (failure experiments).
    pub fn set_wan_drop_prob(&mut self, prob: f64) {
        for site in &mut self.topology.sites {
            for p in &mut site.providers {
                p.drop_prob = prob;
            }
        }
        self.topology.infra_drop_prob = prob;
    }

    /// Set the destination-EID count of every server site.
    pub fn set_dest_count(&mut self, n: usize) {
        for site in &mut self.topology.sites {
            if site.role == SiteRole::Server {
                site.hosts = n;
            }
        }
    }

    /// Replace the workload with an explicit flow script.
    pub fn set_flows(&mut self, flows: Vec<FlowSpec>) {
        self.workload = Workload::Explicit(flows);
    }

    /// Resolve the workload to a concrete flow script for the client.
    pub fn resolve_flows(&self, seed: u64) -> Vec<FlowSpec> {
        match &self.workload {
            Workload::Explicit(flows) => flows.clone(),
            Workload::PoissonZipf {
                flows,
                rate_per_sec,
                zipf_s,
                mode,
            } => {
                let servers: Vec<&SiteSpec> = self
                    .topology
                    .sites
                    .iter()
                    .filter(|s| s.role == SiteRole::Server)
                    .collect();
                assert!(!servers.is_empty(), "workload needs a server site");
                let mut arrivals = PoissonArrivals::new(seed, *rate_per_sec);
                let mut site_pick = ZipfPicker::new(seed.wrapping_add(1), servers.len(), *zipf_s);
                let mut host_picks: Vec<ZipfPicker> = servers
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        assert!(
                            s.hosts > 0,
                            "server site {:?} has no hosts: the generated workload \
                             would query names its zone never registers",
                            s.name
                        );
                        ZipfPicker::new(seed.wrapping_add(2 + i as u64), s.hosts, 0.0)
                    })
                    .collect();
                (0..*flows)
                    .map(|_| {
                        let si = site_pick.pick();
                        let hi = host_picks[si].pick();
                        FlowSpec {
                            start: arrivals.next_arrival(),
                            qname: Name::parse_str(&self.topology.host_name(servers[si], hi))
                                .expect("valid generated name"),
                            mode: *mode,
                        }
                    })
                    .collect()
            }
        }
    }

    fn derived_eid_space(&self) -> Vec<Prefix> {
        match &self.eid_space {
            Some(space) => space.clone(),
            None => self.topology.sites.iter().map(|s| s.eid_prefix).collect(),
        }
    }
}

/// Built handles of one site, keyed by the site's spec.
pub struct SiteWorld {
    /// The site's name.
    pub name: String,
    /// Client or server.
    pub role: SiteRole,
    /// The site's EID prefix.
    pub eid_prefix: Prefix,
    /// The site-internal [`FlowRouter`].
    pub router: NodeId,
    /// The site host: [`TrafficHost`] (client) or [`ServerHost`]
    /// (server).
    pub host: NodeId,
    /// The host's address.
    pub host_addr: Ipv4Address,
    /// The site DNS node: recursive [`Resolver`] (client) or
    /// [`AuthServer`] (server).
    pub dns: NodeId,
    /// The DNS node's address.
    pub dns_addr: Ipv4Address,
    /// The site's PCE (when the control plane is [`CpKind::Pce`]).
    pub pce: Option<NodeId>,
    /// The site's standby PCE twin (replicated PCE worlds, client
    /// sites only).
    pub pce_standby: Option<NodeId>,
    /// Provider names, in spec order.
    pub provider_names: Vec<String>,
    /// Border routers, one per provider; empty under [`CpKind::NoLisp`].
    pub xtrs: Vec<NodeId>,
    /// Border-router RLOCs, one per provider (also under `NoLisp`).
    pub xtr_rlocs: Vec<Ipv4Address>,
    /// Link index of each provider's WAN link (for `sim.link_stats`).
    /// Under `NoLisp` every provider entry aliases the single uplink.
    pub provider_links: Vec<usize>,
    /// Site-router egress port toward each provider's xTR (TE pins).
    pub egress_ports: Vec<PortId>,
    /// Destination EIDs (`host-0 …`) of a server site.
    pub dest_eids: Vec<Ipv4Address>,
    /// The site's DNS zone (server sites).
    pub zone: Option<String>,
}

impl SiteWorld {
    /// Index of a provider by name.
    pub fn provider_index(&self, name: &str) -> Option<usize> {
        self.provider_names.iter().position(|p| p == name)
    }
}

/// The built world: the simulation plus every handle experiments need,
/// keyed by site / provider name.
pub struct World {
    /// The simulation (typed packets; see DESIGN.md §9).
    pub sim: Sim<Packet>,
    /// Control plane installed.
    pub cp: CpKind,
    /// The core "Internet" router.
    pub core: NodeId,
    /// Per-site handles, in spec order.
    pub sites: Vec<SiteWorld>,
    /// DNS-infrastructure servers, root first.
    pub infra_dns: Vec<NodeId>,
    /// Map-resolver node (pull variants).
    pub mr_node: Option<NodeId>,
    /// NERD authority node.
    pub nerd_node: Option<NodeId>,
    /// ALT overlay nodes.
    pub alt_nodes: Vec<NodeId>,
    /// CONS overlay nodes (CARs in site order, then CDRs).
    pub cons_nodes: Vec<NodeId>,
    /// Standby Map-Resolver twin (replicated worlds only).
    pub mr_standby: Option<NodeId>,
    /// Standby NERD authority twin (replicated worlds only).
    pub nerd_standby: Option<NodeId>,
    /// Standby ALT entry gateway (replicated worlds only).
    pub alt_standby: Option<NodeId>,
    /// Standby CONS CARs, in site order (replicated worlds only).
    pub cons_standby_nodes: Vec<NodeId>,
    /// Attacker nodes, in [`ScenarioSpec::attackers`] order (roles that
    /// need no node of their own — overclaiming — contribute none).
    pub attack_nodes: Vec<NodeId>,
}

impl World {
    /// The site with the given name.
    ///
    /// # Panics
    /// Panics when no such site exists (a spec bug worth failing loudly
    /// on).
    pub fn site(&self, name: &str) -> &SiteWorld {
        self.sites
            .iter()
            .find(|s| s.name == name)
            .unwrap_or_else(|| panic!("no site named {name:?} in this world"))
    }

    /// The first client site (the traffic source).
    pub fn client(&self) -> &SiteWorld {
        self.sites
            .iter()
            .find(|s| s.role == SiteRole::Client)
            .expect("world has no client site")
    }

    /// All server sites, in spec order.
    pub fn server_sites(&self) -> impl Iterator<Item = &SiteWorld> {
        self.sites.iter().filter(|s| s.role == SiteRole::Server)
    }

    /// Every border router in the world, site-major.
    pub fn all_xtrs(&self) -> Vec<NodeId> {
        self.sites.iter().flat_map(|s| s.xtrs.clone()).collect()
    }

    /// Schedule the start of every scripted flow at its spec time.
    pub fn schedule_all_flows(&mut self) {
        let client = self.client().host;
        let starts: Vec<(usize, Ns)> = {
            let host = self.sim.node_ref::<TrafficHost>(client);
            host.flows
                .iter()
                .enumerate()
                .map(|(i, f)| (i, f.start))
                .collect()
        };
        for (i, at) in starts {
            self.sim
                .schedule_timer(client, at, TrafficHost::start_token(i));
        }
    }

    /// Start one flow now.
    pub fn start_flow(&mut self, i: usize) {
        let client = self.client().host;
        self.sim
            .schedule_timer(client, Ns::ZERO, TrafficHost::start_token(i));
    }

    /// Start time of the last scripted flow (workload horizon helper).
    pub fn last_flow_start(&self) -> Ns {
        self.sim
            .node_ref::<TrafficHost>(self.client().host)
            .flows
            .iter()
            .map(|f| f.start)
            .fold(Ns::ZERO, Ns::max)
    }

    /// The flow records measured so far at the client.
    pub fn records(&self) -> Vec<crate::hosts::FlowRecord> {
        self.sim
            .node_ref::<TrafficHost>(self.client().host)
            .records
            .clone()
    }

    /// UDP data-packet arrival times at one server site's host, in
    /// arrival order (the outage signal of the recovery experiments).
    pub fn udp_arrivals(&self, site: &str) -> Vec<Ns> {
        self.sim
            .node_ref::<ServerHost>(self.site(site).host)
            .udp_arrivals
            .clone()
    }

    /// Data packets received by all destination hosts (UDP mode).
    pub fn server_udp_received(&self) -> u64 {
        self.server_sites()
            .map(|s| self.sim.node_ref::<ServerHost>(s.host).total_udp())
            .sum()
    }

    /// Sum of miss-drops across all xTRs.
    pub fn total_miss_drops(&self) -> u64 {
        self.sites
            .iter()
            .flat_map(|s| s.xtrs.iter())
            .map(|&x| self.sim.node_ref::<Xtr>(x).stats.miss_drops)
            .sum()
    }

    /// Bytes carried on each provider link of a site, both directions,
    /// in provider order.
    pub fn provider_bytes(&self, site: &str) -> Vec<u64> {
        self.site(site)
            .provider_links
            .iter()
            .map(|&l| self.sim.link_stats(l, 0).tx_bytes + self.sim.link_stats(l, 1).tx_bytes)
            .collect()
    }

    /// Bytes arriving INTO a site per provider link (direction
    /// core→border), in provider order. Links are created as
    /// `connect(xtr, core)`: dir 0 = outbound, dir 1 = inbound.
    pub fn provider_inbound_bytes(&self, site: &str) -> Vec<u64> {
        self.site(site)
            .provider_links
            .iter()
            .map(|&l| self.sim.link_stats(l, 1).tx_bytes)
            .collect()
    }

    /// Override the miss policy of every xTR running in Pull mode
    /// (pull systems must queue for latency-oriented experiments).
    pub fn override_pull_miss_policy(&mut self, policy: MissPolicy) {
        for x in self.all_xtrs() {
            let xtr = self.sim.node_mut::<Xtr>(x);
            if matches!(xtr.cfg.mode, CpMode::Pull { .. }) {
                xtr.cfg.miss_policy = policy;
            }
        }
    }
}

impl ScenarioSpec {
    /// Construct the world.
    ///
    /// # Panics
    /// Panics on an ill-formed spec: no sites, a site without
    /// providers, not exactly one client site, a server site with a
    /// host population outside `1..=200` (the per-site EID address
    /// plan holds 200 hosts), or (via [`MappingDb`]) duplicate EID
    /// prefixes across sites.
    pub fn build(&self, seed: u64) -> World {
        let topo = &self.topology;
        let cp = self.cp;
        assert!(!topo.sites.is_empty(), "spec has no sites");
        assert!(
            topo.sites.iter().all(|s| !s.providers.is_empty()),
            "every site needs at least one provider"
        );
        let clients = topo
            .sites
            .iter()
            .filter(|s| s.role == SiteRole::Client)
            .count();
        assert!(
            clients == 1,
            "spec needs exactly one client site (found {clients}): the workload \
             drives a single traffic source"
        );
        for s in &topo.sites {
            if s.role == SiteRole::Server {
                assert!(
                    (1..=200).contains(&s.hosts),
                    "server site {:?} has {} hosts; the per-site EID plan \
                     (last octet 10 + i) holds 1..=200",
                    s.name,
                    s.hosts
                );
            }
        }

        let mut sim: Sim<Packet> = Sim::new(seed);
        let flows = self.resolve_flows(seed);
        let mapsys_owd = topo.mapsys_owd.unwrap_or(topo.infra_owd);
        let dyn_probing = self.dynamics.as_ref().and_then(|d| d.rloc_probing);
        let dyn_down_policy = self
            .dynamics
            .as_ref()
            .map(|d| d.down_policy)
            .unwrap_or_default();

        // ---- DNS infrastructure zone data -----------------------------------
        // Chain of delegations: root → [intermediates] → site zones.
        let depth = topo.dns_depth.max(1);
        let suffixes = topo.level_suffixes(); // zone names per infra level
        let infra_addr = |level: usize| -> Ipv4Address {
            match level {
                0 => addrs::ROOT,
                1 => addrs::TLD,
                l => Ipv4Address::new(9, 0, (l - 1) as u8, 53),
            }
        };
        let zone_name_of = |s: &str| -> Name {
            if s.is_empty() {
                Name::root()
            } else {
                Name::parse_str(s).expect("valid zone name")
            }
        };
        let mut infra_stores: Vec<ZoneStore> = Vec::new();
        for level in 0..depth {
            let mut zone = Zone::new(zone_name_of(&suffixes[level]));
            if level + 1 < depth {
                let child = &suffixes[level + 1];
                zone.delegate(
                    Name::parse_str(child).expect("valid"),
                    vec![(
                        Name::parse_str(&format!("ns.{child}")).expect("valid"),
                        infra_addr(level + 1),
                    )],
                    86_400,
                );
            } else {
                // Deepest infra level delegates every server-site zone.
                for site in topo.sites.iter().filter(|s| s.role == SiteRole::Server) {
                    let z = topo.site_zone(site);
                    zone.delegate(
                        Name::parse_str(&z).expect("valid"),
                        vec![(
                            Name::parse_str(&format!("ns.{z}")).expect("valid"),
                            site.dns_addr(),
                        )],
                        86_400,
                    );
                }
            }
            let mut store = ZoneStore::new();
            store.add_zone(zone);
            infra_stores.push(store);
        }

        // Per-site authoritative zone data (server sites).
        let site_dest_eids: Vec<Vec<Ipv4Address>> = topo
            .sites
            .iter()
            .map(|s| match s.role {
                SiteRole::Server => (0..s.hosts).map(|i| s.dest_eid(i)).collect(),
                SiteRole::Client => Vec::new(),
            })
            .collect();
        let site_stores: Vec<Option<ZoneStore>> = topo
            .sites
            .iter()
            .zip(&site_dest_eids)
            .map(|(s, eids)| match s.role {
                SiteRole::Client => None,
                SiteRole::Server => {
                    let z = topo.site_zone(s);
                    let mut zone = Zone::new(Name::parse_str(&z).expect("valid"));
                    zone.add_a(
                        Name::parse_str(&format!("host.{z}")).expect("valid"),
                        s.host_addr(),
                        300,
                    );
                    for (i, eid) in eids.iter().enumerate() {
                        zone.add_a(
                            Name::parse_str(&format!("host-{i}.{z}")).expect("valid"),
                            *eid,
                            300,
                        );
                    }
                    let mut store = ZoneStore::new();
                    store.add_zone(zone);
                    Some(store)
                }
            })
            .collect();

        // ---- Nodes ----------------------------------------------------------
        let core = sim.add_node("core", Box::new(Router::new()));
        let site_routers: Vec<NodeId> = topo
            .sites
            .iter()
            .map(|s| sim.add_node(&format!("site-{}", s.name), Box::new(FlowRouter::new())))
            .collect();
        let hosts: Vec<NodeId> = topo
            .sites
            .iter()
            .map(|s| match s.role {
                SiteRole::Client => sim.add_node(
                    &format!("E_{}", s.name),
                    Box::new(TrafficHost::new(s.host_addr(), s.dns_addr(), flows.clone())),
                ),
                SiteRole::Server => sim.add_node(
                    &format!("E_{}", s.name),
                    Box::new(ServerHost::new(s.host_addr())),
                ),
            })
            .collect();
        let mut site_stores = site_stores;
        let dns_nodes: Vec<NodeId> = topo
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| match s.role {
                SiteRole::Client => {
                    let mut cfg = ResolverConfig::default();
                    if cp == CpKind::Pce {
                        cfg.ipc_notify = Some(s.pce_addr());
                    }
                    sim.add_node(
                        &format!("DNS_{}", s.name),
                        Box::new(Resolver::with_config(s.dns_addr(), vec![addrs::ROOT], cfg)),
                    )
                }
                SiteRole::Server => sim.add_node(
                    &format!("DNS_{}", s.name),
                    Box::new(AuthServer::new(
                        s.dns_addr(),
                        site_stores[i].take().expect("server store"),
                    )),
                ),
            })
            .collect();
        let infra_dns: Vec<NodeId> = infra_stores
            .into_iter()
            .enumerate()
            .map(|(level, store)| {
                let name = match level {
                    0 => "dns-root".to_string(),
                    1 => "dns-tld".to_string(),
                    l => format!("dns-l{l}"),
                };
                sim.add_node(&name, Box::new(AuthServer::new(infra_addr(level), store)))
            })
            .collect();

        // ---- Hosts & site wiring ---------------------------------------------
        let host_ports: Vec<PortId> = topo
            .sites
            .iter()
            .enumerate()
            .map(|(i, _)| {
                let (_, sp) = sim.connect(hosts[i], site_routers[i], LinkCfg::lan());
                sp
            })
            .collect();

        // Warm-standby replication (DESIGN.md §13): `Some` arms one
        // standby twin per mapping role below.
        let replicas = self.replicas.filter(|r| r.count > 0);
        // The standby PCE bump lives next to the primary on the site's
        // first internal subnet (primary .200, standby .201).
        let pce_standby_addr = |s: &SiteSpec| -> Ipv4Address {
            let o = s.providers[0].internal_prefix.addr().0;
            Ipv4Address::new(o[0], o[1], o[2], 201)
        };
        let pce_cfg_of = |s: &SiteSpec, addr: Ipv4Address| -> PceConfig {
            let providers: Vec<Provider> = s
                .providers
                .iter()
                .map(|p| Provider::new(&p.name, p.rloc, p.bandwidth_bps as f64 / 1e6))
                .collect();
            let mut cfg = PceConfig::new(
                addr,
                vec![s.eid_prefix],
                s.providers.iter().map(|p| p.rloc).collect(),
                providers,
            );
            cfg.precompute = self.pce_precompute;
            cfg.push_to_all_itrs = self.pce_push_all;
            cfg.policy = self.pce_policy;
            cfg.mapping_ttl_minutes = self.mapping_ttl_minutes;
            cfg
        };

        // DNS attachment: behind the PCE bump when cp == Pce.
        let mut pce_nodes: Vec<Option<NodeId>> = vec![None; topo.sites.len()];
        let mut pce_standby_nodes: Vec<Option<NodeId>> = vec![None; topo.sites.len()];
        let mut pce_standby_ports: Vec<Option<PortId>> = vec![None; topo.sites.len()];
        let dns_ports: Vec<PortId> = if cp == CpKind::Pce {
            let pces: Vec<NodeId> = topo
                .sites
                .iter()
                .map(|s| {
                    let mut cfg = pce_cfg_of(s, s.pce_addr());
                    // The primary warm-mirrors every installed flow to
                    // its standby twin (client sites only — server-site
                    // DNS is authoritative, not resolver-driven).
                    if replicas.is_some() && s.role == SiteRole::Client {
                        cfg.mirror_to = Some(pce_standby_addr(s));
                    }
                    sim.add_node(&format!("PCE_{}", s.name), Box::new(Pce::new(cfg)))
                })
                .collect();
            // PCE port 0 = DNS side, port 1 = network side.
            let ports = (0..topo.sites.len())
                .map(|i| {
                    sim.connect(pces[i], dns_nodes[i], LinkCfg::ipc());
                    let (_, sp_pce) = sim.connect(pces[i], site_routers[i], LinkCfg::lan());
                    sp_pce
                })
                .collect();
            if replicas.is_some() {
                for (i, s) in topo.sites.iter().enumerate() {
                    if s.role != SiteRole::Client {
                        continue;
                    }
                    let standby = pce_cfg_of(s, pce_standby_addr(s));
                    let id = sim.add_node(&format!("PCE2_{}", s.name), Box::new(Pce::new(standby)));
                    // Resolver port 1 = standby uplink; armed by the
                    // TOKEN_FAILOVER timer the dynamics block schedules.
                    sim.connect(id, dns_nodes[i], LinkCfg::ipc());
                    let (_, sp) = sim.connect(id, site_routers[i], LinkCfg::lan());
                    sim.node_mut::<Resolver>(dns_nodes[i])
                        .set_failover(1, pce_standby_addr(s));
                    pce_standby_nodes[i] = Some(id);
                    pce_standby_ports[i] = Some(sp);
                }
            }
            pce_nodes = pces.into_iter().map(Some).collect();
            ports
        } else {
            (0..topo.sites.len())
                .map(|i| {
                    let (_, sp_dns) = sim.connect(dns_nodes[i], site_routers[i], LinkCfg::lan());
                    sp_dns
                })
                .collect()
        };

        // ---- Border: xTRs or plain routing ------------------------------------
        let eid_space = self.derived_eid_space();
        let mut site_xtrs: Vec<Vec<NodeId>> = vec![Vec::new(); topo.sites.len()];
        let mut site_links: Vec<Vec<usize>> = vec![Vec::new(); topo.sites.len()];
        let mut site_egress: Vec<Vec<PortId>> = vec![Vec::new(); topo.sites.len()];
        let mut mr_node = None;
        let mut nerd_node = None;
        let mut alt_nodes = Vec::new();
        let mut cons_nodes = Vec::new();
        let mut mr_standby = None;
        let mut nerd_standby = None;
        let mut alt_standby = None;
        let mut cons_standby_nodes: Vec<NodeId> = Vec::new();

        // Mapping-system overlay addresses are deterministic, so xTR
        // resolver targets can be computed before the overlay exists.
        let alt_chain_addrs: Vec<Ipv4Address> = match cp {
            CpKind::Alt { hops } => (0..hops.max(1))
                .map(|i| Ipv4Address::new(9, 1, 0, (i + 1) as u8))
                .collect(),
            _ => Vec::new(),
        };
        let car_addr_of = |site_idx: usize| Ipv4Address::new(9, 2, 0, (site_idx + 1) as u8);
        let standby_car_addr_of = |site_idx: usize| Ipv4Address::new(9, 2, 2, (site_idx + 1) as u8);

        if cp == CpKind::NoLisp {
            // Sites connect straight to the core; EIDs globally routable.
            let mut uplinks: Vec<(usize, PortId, PortId)> = Vec::new();
            for (i, s) in topo.sites.iter().enumerate() {
                let p0 = &s.providers[0];
                let link = sim.link_count();
                let (sp_up, cp_port) = sim.connect(
                    site_routers[i],
                    core,
                    LinkCfg::wan(p0.owd)
                        .with_bandwidth(p0.bandwidth_bps)
                        .with_drop_prob(p0.drop_prob)
                        .with_down_policy(dyn_down_policy),
                );
                uplinks.push((link, sp_up, cp_port));
                site_links[i] = vec![link; s.providers.len()];
            }
            {
                let r = sim.node_mut::<Router>(core);
                for (i, s) in topo.sites.iter().enumerate() {
                    r.add_route(s.eid_prefix, uplinks[i].2);
                    r.add_route(s.providers[0].core_route, uplinks[i].2);
                }
            }
            for (i, s) in topo.sites.iter().enumerate() {
                let r = sim.node_mut::<FlowRouter>(site_routers[i]);
                match s.role {
                    SiteRole::Client => {
                        r.add_route(Prefix::host(s.host_addr()), host_ports[i]);
                    }
                    SiteRole::Server => {
                        r.add_route(s.eid_prefix, host_ports[i]);
                    }
                }
                r.add_route(Prefix::host(s.dns_addr()), dns_ports[i]);
                r.set_default_route(uplinks[i].1);
            }
        } else {
            // xTR modes per control plane.
            let miss: MissPolicy = match cp {
                CpKind::LispQueue => MissPolicy::Queue { max_packets: 64 },
                CpKind::LispDataCp => MissPolicy::DataOverCp {
                    extra_latency: Ns::from_ms(40),
                },
                _ => MissPolicy::Drop,
            };
            let mode_of = |site_idx: usize| -> CpMode {
                match cp {
                    CpKind::Pce => CpMode::Pce,
                    CpKind::Nerd => CpMode::PushDb,
                    CpKind::Alt { .. } => CpMode::Pull {
                        map_resolver: Some(alt_chain_addrs[0]),
                    },
                    CpKind::Cons { .. } => CpMode::Pull {
                        map_resolver: Some(car_addr_of(site_idx)),
                    },
                    CpKind::LispDrop | CpKind::LispQueue | CpKind::LispDataCp => CpMode::Pull {
                        map_resolver: Some(addrs::MAP_RESOLVER),
                    },
                    CpKind::NoLisp => unreachable!(),
                }
            };

            // All xTR nodes first (site-major, provider-minor), matching
            // the figure's construction order.
            for (i, s) in topo.sites.iter().enumerate() {
                let internal: Vec<Prefix> = s.providers.iter().map(|p| p.internal_prefix).collect();
                let pced = (cp == CpKind::Pce).then(|| s.pce_addr());
                for (k, p) in s.providers.iter().enumerate() {
                    let peers: Vec<Ipv4Address> = s
                        .providers
                        .iter()
                        .enumerate()
                        .filter(|&(j, _)| j != k)
                        .map(|(_, q)| q.rloc)
                        .collect();
                    let mut cfg =
                        XtrConfig::new(p.rloc, s.eid_prefix, eid_space.clone(), mode_of(i));
                    cfg.miss_policy = miss;
                    cfg.internal_plain_prefixes = internal.clone();
                    cfg.reverse_sync_peers = peers;
                    cfg.pced_addr = pced;
                    cfg.reply_ttl_minutes = self.mapping_ttl_minutes;
                    cfg.reply_host_granularity = self.fine_grained_mappings;
                    cfg.rloc_probing = dyn_probing;
                    cfg.cache = s.cache.unwrap_or(self.cache);
                    cfg.defense = self.defense.xtr;
                    if let Some(r) = self.retry {
                        if let Some(rt) = r.retransmit {
                            cfg.request_retransmit = rt;
                        }
                        if let Some(mt) = r.max_tries {
                            cfg.request_max_tries = mt;
                        }
                        cfg.request_backoff_multiplier = r.backoff_multiplier;
                        cfg.request_backoff_cap = r.backoff_cap;
                        cfg.request_cooldown = r.cooldown;
                    }
                    if let Some(rep) = replicas {
                        cfg.resolver_failover_sticky = rep.sticky_failover;
                        // Ordered failover list: the standby twin of
                        // whatever resolver this plane points at.
                        cfg.map_resolver_replicas = match cp {
                            CpKind::LispDrop | CpKind::LispQueue | CpKind::LispDataCp => {
                                vec![addrs::MAP_RESOLVER_2]
                            }
                            CpKind::Alt { .. } => vec![addrs::ALT_GATEWAY_2],
                            CpKind::Cons { .. } => vec![standby_car_addr_of(i)],
                            _ => Vec::new(),
                        };
                    }
                    for atk in &self.attackers {
                        if let AttackerSpec::Overclaim { site, prefix_len } = atk {
                            if *site == s.name {
                                cfg.overclaim = Some(Prefix::new(s.eid_prefix.addr(), *prefix_len));
                            }
                        }
                    }
                    let id = sim.add_node(&format!("xTR-{}", p.name), Box::new(Xtr::new(cfg)));
                    site_xtrs[i].push(id);
                }
            }

            // Site ports (xTR port 0 = site).
            for i in 0..topo.sites.len() {
                let xtrs = site_xtrs[i].clone();
                for x in xtrs {
                    let (_, sp) = sim.connect(x, site_routers[i], LinkCfg::lan());
                    site_egress[i].push(sp);
                }
            }

            // WAN ports (xTR port 1 = provider link to core).
            for (i, s) in topo.sites.iter().enumerate() {
                for (k, p) in s.providers.iter().enumerate() {
                    site_links[i].push(sim.link_count());
                    let (_, core_port) = sim.connect(
                        site_xtrs[i][k],
                        core,
                        LinkCfg::wan(p.owd)
                            .with_bandwidth(p.bandwidth_bps)
                            .with_drop_prob(p.drop_prob)
                            .with_down_policy(dyn_down_policy),
                    );
                    sim.node_mut::<Router>(core)
                        .add_route(p.core_route, core_port);
                }
            }

            // Site-router tables.
            for (i, s) in topo.sites.iter().enumerate() {
                let r = sim.node_mut::<FlowRouter>(site_routers[i]);
                if s.role == SiteRole::Client {
                    r.add_route(Prefix::host(s.host_addr()), host_ports[i]);
                }
                r.add_route(s.eid_prefix, host_ports[i]);
                for (k, p) in s.providers.iter().enumerate() {
                    r.add_route(Prefix::host(p.rloc), site_egress[i][k]);
                }
                r.add_route(Prefix::host(s.dns_addr()), dns_ports[i]);
                if cp == CpKind::Pce {
                    r.add_route(Prefix::host(s.pce_addr()), dns_ports[i]);
                    if let Some(sp) = pce_standby_ports[i] {
                        r.add_route(Prefix::host(pce_standby_addr(s)), sp);
                    }
                }
                r.set_default_route(site_egress[i][0]);
            }
        }

        // ---- DNS infrastructure at the core ------------------------------------
        for (level, &node) in infra_dns.iter().enumerate() {
            let (_, port) = sim.connect(
                node,
                core,
                LinkCfg::wan(topo.infra_owd).with_drop_prob(topo.infra_drop_prob),
            );
            sim.node_mut::<Router>(core)
                .add_route(Prefix::host(infra_addr(level)), port);
        }

        // ---- Mapping-system infrastructure --------------------------------------
        let mut db = MappingDb::new();
        for (i, s) in topo.sites.iter().enumerate() {
            let etr = s.providers[0].rloc;
            if self.fine_grained_mappings {
                db.register(SiteEntry::single(
                    Prefix::host(s.host_addr()),
                    etr,
                    self.mapping_ttl_minutes,
                ));
                for eid in &site_dest_eids[i] {
                    db.register(SiteEntry::single(
                        Prefix::host(*eid),
                        etr,
                        self.mapping_ttl_minutes,
                    ));
                }
            } else {
                db.register(SiteEntry::single(
                    s.eid_prefix,
                    etr,
                    self.mapping_ttl_minutes,
                ));
            }
        }

        match cp {
            CpKind::LispDrop | CpKind::LispQueue | CpKind::LispDataCp => {
                let mut resolver = MapResolver::new(addrs::MAP_RESOLVER, &db);
                if let Some(g) = self.defense.resolver_guard {
                    resolver = resolver.with_guard(g);
                }
                let mr = sim.add_node("map-resolver", Box::new(resolver));
                let (_, port) = sim.connect(mr, core, LinkCfg::wan(mapsys_owd));
                sim.node_mut::<Router>(core)
                    .add_route(Prefix::host(addrs::MAP_RESOLVER), port);
                mr_node = Some(mr);
                if replicas.is_some() {
                    // Standby twin sharing the registration database
                    // (registrations go to both; DESIGN.md §13).
                    let mut twin = MapResolver::new(addrs::MAP_RESOLVER_2, &db);
                    if let Some(g) = self.defense.resolver_guard {
                        twin = twin.with_guard(g);
                    }
                    let mr2 = sim.add_node("map-resolver-2", Box::new(twin));
                    let (_, port) = sim.connect(mr2, core, LinkCfg::wan(mapsys_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(addrs::MAP_RESOLVER_2), port);
                    mr_standby = Some(mr2);
                }
            }
            CpKind::Alt { .. } => {
                // One shared linear overlay; the entry router is the
                // resolver address every ITR uses; deliveries at the far
                // end for every registered site.
                let chain_addrs = &alt_chain_addrs;
                // Seed the chain with the first server site (the
                // figure's domain D), then add every other site.
                let first_server = topo
                    .sites
                    .iter()
                    .position(|s| s.role == SiteRole::Server)
                    .expect("ALT needs a server site");
                let mut routers = linear_chain(
                    chain_addrs,
                    topo.sites[first_server].eid_prefix,
                    topo.sites[first_server].providers[0].rloc,
                );
                for (i, s) in topo.sites.iter().enumerate() {
                    if i == first_server {
                        continue;
                    }
                    let etr = s.providers[0].rloc;
                    if let Some(last) = routers.last_mut() {
                        last.add_delivery(s.eid_prefix, etr);
                    }
                    if routers.len() > 1 {
                        routers[0].add_overlay_route(s.eid_prefix, chain_addrs[1]);
                        for k in 1..routers.len() - 1 {
                            routers[k].add_overlay_route(s.eid_prefix, chain_addrs[k + 1]);
                        }
                    } else {
                        routers[0].add_delivery(s.eid_prefix, etr);
                    }
                }
                if let Some(g) = self.defense.resolver_guard {
                    // The entry router is the overlay's ingress; guard it.
                    if let Some(first) = routers.first_mut() {
                        first.guard = Some(RequestGuard::new(g));
                    }
                }
                for (i, r) in routers.into_iter().enumerate() {
                    let node = sim.add_node(&format!("alt-{i}"), Box::new(r));
                    let (_, port) = sim.connect(node, core, LinkCfg::wan(mapsys_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(chain_addrs[i]), port);
                    alt_nodes.push(node);
                }
                if replicas.is_some() {
                    // Standby entry gateway: same first-hop overlay
                    // routes as alt-0 under its own address, so the
                    // rest of the chain serves either ingress.
                    let mut gw = AltRouter::new(addrs::ALT_GATEWAY_2);
                    for s in topo.sites.iter() {
                        if chain_addrs.len() > 1 {
                            gw.add_overlay_route(s.eid_prefix, chain_addrs[1]);
                        } else {
                            gw.add_delivery(s.eid_prefix, s.providers[0].rloc);
                        }
                    }
                    if let Some(g) = self.defense.resolver_guard {
                        gw.guard = Some(RequestGuard::new(g));
                    }
                    let node = sim.add_node("alt-standby", Box::new(gw));
                    let (_, port) = sim.connect(node, core, LinkCfg::wan(mapsys_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(addrs::ALT_GATEWAY_2), port);
                    alt_standby = Some(node);
                }
            }
            CpKind::Cons { cdr_depth } => {
                let cdr_addrs: Vec<Ipv4Address> = (0..=cdr_depth)
                    .map(|i| Ipv4Address::new(9, 2, 1, (i + 1) as u8))
                    .collect();
                // One CAR per site under cdr[0]; CDRs chain up to the root.
                let mut cars: Vec<ConsNode> = topo
                    .sites
                    .iter()
                    .enumerate()
                    .map(|(i, s)| {
                        let mut car = ConsNode::new(car_addr_of(i), Some(cdr_addrs[0]));
                        car.add_site(s.eid_prefix, s.providers[0].rloc);
                        if let Some(g) = self.defense.resolver_guard {
                            car.guard = Some(RequestGuard::new(g));
                        }
                        car
                    })
                    .collect();
                let mut cdrs: Vec<ConsNode> = Vec::new();
                for (i, &addr) in cdr_addrs.iter().enumerate() {
                    let parent = cdr_addrs.get(i + 1).copied();
                    let mut n = ConsNode::new(addr, parent);
                    for (j, s) in topo.sites.iter().enumerate() {
                        if i == 0 {
                            n.add_child(s.eid_prefix, car_addr_of(j));
                        } else {
                            n.add_child(s.eid_prefix, cdr_addrs[i - 1]);
                        }
                    }
                    cdrs.push(n);
                }
                for (i, node) in cars.drain(..).enumerate() {
                    let addr = car_addr_of(i);
                    let id = sim.add_node(&format!("cons-car-{addr}"), Box::new(node));
                    let (_, port) = sim.connect(id, core, LinkCfg::wan(mapsys_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(addr), port);
                    cons_nodes.push(id);
                }
                for (i, node) in cdrs.into_iter().enumerate() {
                    let id = sim.add_node(&format!("cons-cdr-{i}"), Box::new(node));
                    let (_, port) = sim.connect(id, core, LinkCfg::wan(mapsys_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(cdr_addrs[i]), port);
                    cons_nodes.push(id);
                }
                if replicas.is_some() {
                    // A standby CAR per site, homed under the same
                    // first-level CDR so queries it forwards reach the
                    // destination's (live) primary CAR.
                    for (i, s) in topo.sites.iter().enumerate() {
                        let addr = standby_car_addr_of(i);
                        let mut car = ConsNode::new(addr, Some(cdr_addrs[0]));
                        car.add_site(s.eid_prefix, s.providers[0].rloc);
                        if let Some(g) = self.defense.resolver_guard {
                            car.guard = Some(RequestGuard::new(g));
                        }
                        let id = sim.add_node(&format!("cons-car2-{addr}"), Box::new(car));
                        let (_, port) = sim.connect(id, core, LinkCfg::wan(mapsys_owd));
                        sim.node_mut::<Router>(core)
                            .add_route(Prefix::host(addr), port);
                        cons_standby_nodes.push(id);
                    }
                }
            }
            CpKind::Nerd => {
                let subscribers: Vec<Ipv4Address> = topo
                    .sites
                    .iter()
                    .flat_map(|s| s.providers.iter().map(|p| p.rloc))
                    .collect();
                let authority = NerdAuthority::new(addrs::NERD, &db, subscribers.clone());
                let nerd = sim.add_node("nerd", Box::new(authority));
                let (_, port) = sim.connect(nerd, core, LinkCfg::wan(mapsys_owd));
                sim.node_mut::<Router>(core)
                    .add_route(Prefix::host(addrs::NERD), port);
                nerd_node = Some(nerd);
                if replicas.is_some() {
                    // Standby authority: same database and subscriber
                    // list, but no boot push — its first TOKEN_PUSH
                    // (scheduled by the dynamics block on failover)
                    // promotes it and re-pushes the full database.
                    let twin = NerdAuthority::new(addrs::NERD_2, &db, subscribers).standby();
                    let id = sim.add_node("nerd-2", Box::new(twin));
                    let (_, port) = sim.connect(id, core, LinkCfg::wan(mapsys_owd));
                    sim.node_mut::<Router>(core)
                        .add_route(Prefix::host(addrs::NERD_2), port);
                    nerd_standby = Some(id);
                }
            }
            CpKind::NoLisp | CpKind::Pce => {}
        }

        // ---- Adversaries -----------------------------------------------------
        // Attacker nodes come after all legitimate infrastructure so that
        // attacker-free specs construct node-for-node identical worlds,
        // and every attack packet is scheduled *here*, at build time,
        // through the deterministic (time, seq) timer order.
        let mut attack_nodes: Vec<NodeId> = Vec::new();
        if !self.attackers.is_empty() {
            let live_targets: Vec<Ipv4Address> = topo
                .sites
                .iter()
                .enumerate()
                .filter(|(_, s)| s.role == SiteRole::Server)
                .flat_map(|(i, _)| site_dest_eids[i].iter().copied())
                .collect();
            let in_any_site = |a: Ipv4Address| topo.sites.iter().any(|s| s.eid_prefix.contains(a));
            let client_idx = topo
                .sites
                .iter()
                .position(|s| s.role == SiteRole::Client)
                .expect("adversarial scenarios need a client site");
            let attack_t0 = Ns::from_ms(50);

            for (ai, atk) in self.attackers.iter().enumerate() {
                match atk {
                    AttackerSpec::MapRequestFlood {
                        rate_per_sec,
                        packets,
                    } => {
                        // A compromised host inside the client site scans
                        // randomized EIDs. Each probe is ordinary data the
                        // site ITR must classify: live cross-site targets
                        // thrash the cache, dead ones burn the resolver's
                        // full retry budget.
                        let s = &topo.sites[client_idx];
                        let addr = s.eid_with_last_octet(6);
                        let stack = IpStack::new(addr);
                        let mut rng = ScanRng::new(seed ^ (ai as u64 + 1));
                        let mut script = Vec::with_capacity(*packets);
                        for _ in 0..*packets {
                            let want_live = rng.pick(2) == 0;
                            let dead = (0..32).find_map(|_| {
                                let p = eid_space[rng.pick(eid_space.len())];
                                let cand = p.nth_host(rng.next_u64() as u32);
                                (!in_any_site(cand)).then_some(cand)
                            });
                            let target = match (want_live, dead) {
                                (true, _) | (false, None) if !live_targets.is_empty() => {
                                    live_targets[rng.pick(live_targets.len())]
                                }
                                (_, Some(d)) => d,
                                _ => eid_space[0].nth_host(rng.next_u64() as u32),
                            };
                            script.push(stack.udp(9666, target, 9666, vec![0u8; 40]));
                        }
                        let period = Ns((1e9 / rate_per_sec).max(1.0) as u64);
                        let node = sim.add_node(
                            &format!("attacker-flood-{ai}"),
                            Box::new(AttackNode::new(addr, script)),
                        );
                        let (_, rp) = sim.connect(node, site_routers[client_idx], LinkCfg::lan());
                        sim.node_mut::<FlowRouter>(site_routers[client_idx])
                            .add_route(Prefix::host(addr), rp);
                        for k in 0..*packets as u64 {
                            sim.schedule_timer(node, attack_t0.saturating_add(Ns(period.0 * k)), k);
                        }
                        attack_nodes.push(node);
                    }
                    AttackerSpec::CachePoison {
                        rate_per_sec,
                        rounds,
                    } => {
                        // An off-site node sprays spoofed Map-Replies at
                        // every client-site xTR, claiming every server
                        // prefix with the attacker's own RLOC as locator.
                        // Hijacked tunnels then land back on this node,
                        // which absorbs them (counted, never delivered).
                        let addr = Ipv4Address::new(66, 6, 0, (ai + 1) as u8);
                        let stack = IpStack::new(addr);
                        let mut rng = ScanRng::new(seed ^ (0x5000 + ai as u64));
                        let victims: Vec<Ipv4Address> = topo
                            .sites
                            .iter()
                            .filter(|s| s.role == SiteRole::Client)
                            .flat_map(|s| s.providers.iter().map(|p| p.rloc))
                            .collect();
                        let claims: Vec<Prefix> = topo
                            .sites
                            .iter()
                            .filter(|s| s.role == SiteRole::Server)
                            .map(|s| s.eid_prefix)
                            .collect();
                        let mut script = Vec::new();
                        for _ in 0..*rounds {
                            for &victim in &victims {
                                for &claim in &claims {
                                    let reply = MapReply {
                                        // The attacker cannot see nonces in
                                        // flight; it guesses (verification,
                                        // when armed, rejects these).
                                        nonce: rng.next_u64(),
                                        records: vec![MapRecord {
                                            eid_prefix: claim.addr(),
                                            prefix_len: claim.len(),
                                            ttl_minutes: self.mapping_ttl_minutes,
                                            locators: vec![Locator::new(addr, 1, 100)],
                                        }],
                                    };
                                    script.push(stack.ctl(
                                        ports::LISP_CONTROL,
                                        victim,
                                        ports::LISP_CONTROL,
                                        CtlMsg::Reply(reply),
                                    ));
                                }
                            }
                        }
                        let per_round = (victims.len() * claims.len()) as u64;
                        let node = sim.add_node(
                            &format!("attacker-poison-{ai}"),
                            Box::new(AttackNode::new(addr, script)),
                        );
                        let (_, port) = sim.connect(node, core, LinkCfg::wan(mapsys_owd));
                        sim.node_mut::<Router>(core)
                            .add_route(Prefix::new(Ipv4Address::new(66, 0, 0, 0), 8), port);
                        let period = Ns((1e9 / rate_per_sec).max(1.0) as u64);
                        for r in 0..*rounds as u64 {
                            for j in 0..per_round {
                                sim.schedule_timer(
                                    node,
                                    attack_t0.saturating_add(Ns(period.0 * r)),
                                    r * per_round + j,
                                );
                            }
                        }
                        attack_nodes.push(node);
                    }
                    // Overclaiming is a config flag on the site's own
                    // xTRs, applied in the border block above.
                    AttackerSpec::Overclaim { .. } => {}
                }
            }
        }

        // ---- Timed dynamics --------------------------------------------------
        // Every mutation is scheduled *now*, at build time: link changes
        // as engine LinkAdmin events, node changes as timers against
        // state pre-loaded into the nodes above — so the whole failure
        // story replays inside the deterministic (time, seq) event order.
        if let Some(dynamics) = &self.dynamics {
            let site_index = |name: &str| -> usize {
                topo.sites
                    .iter()
                    .position(|s| s.name == name)
                    .unwrap_or_else(|| panic!("dynamics event names unknown site {name:?}"))
            };
            let provider_index = |i: usize, name: &str| -> usize {
                topo.sites[i]
                    .providers
                    .iter()
                    .position(|p| p.name == name)
                    .unwrap_or_else(|| {
                        panic!(
                            "dynamics event names unknown provider {name:?} at site {:?}",
                            topo.sites[i].name
                        )
                    })
            };
            // The prefixes this site registered with the mapping system
            // (mirrors the MappingDb registration loop above).
            let registered_prefixes = |i: usize| -> Vec<Prefix> {
                if self.fine_grained_mappings {
                    let mut v = vec![Prefix::host(topo.sites[i].host_addr())];
                    v.extend(site_dest_eids[i].iter().map(|e| Prefix::host(*e)));
                    v
                } else {
                    vec![topo.sites[i].eid_prefix]
                }
            };
            // Re-register site `i`'s mappings onto `rloc` at time `at`,
            // whatever the mapping system in this world is.
            let reregister = |sim: &mut Sim<Packet>, at: Ns, i: usize, rloc: Ipv4Address| match cp {
                CpKind::LispDrop | CpKind::LispQueue | CpKind::LispDataCp => {
                    for mr in mr_node.iter().chain(mr_standby.iter()) {
                        let node = sim.node_mut::<MapResolver>(*mr);
                        for prefix in registered_prefixes(i) {
                            node.schedule_update(at, prefix, rloc);
                        }
                    }
                }
                CpKind::Nerd => {
                    for nerd in nerd_node.iter().chain(nerd_standby.iter()) {
                        let node = sim.node_mut::<NerdAuthority>(*nerd);
                        for prefix in registered_prefixes(i) {
                            node.schedule_update(
                                at,
                                MapRecord {
                                    eid_prefix: prefix.addr(),
                                    prefix_len: prefix.len(),
                                    ttl_minutes: self.mapping_ttl_minutes,
                                    locators: vec![Locator::new(rloc, 1, 100)],
                                },
                            );
                        }
                    }
                }
                CpKind::Alt { .. } => {
                    // Delivery entries live on the chain's last router —
                    // and on the standby gateway when the chain is one
                    // router long (then the gateway delivers directly).
                    let mut targets: Vec<NodeId> = Vec::new();
                    if let Some(&last) = alt_nodes.last() {
                        targets.push(last);
                    }
                    if alt_nodes.len() == 1 {
                        targets.extend(alt_standby);
                    }
                    for node_id in targets {
                        let node = sim.node_mut::<AltRouter>(node_id);
                        for prefix in registered_prefixes(i) {
                            node.schedule_update(at, prefix, rloc);
                        }
                    }
                }
                CpKind::Cons { .. } => {
                    // cons_nodes lists the CARs in site order, CDRs after.
                    let mut targets = vec![cons_nodes[i]];
                    targets.extend(cons_standby_nodes.get(i).copied());
                    for node_id in targets {
                        let node = sim.node_mut::<ConsNode>(node_id);
                        for prefix in registered_prefixes(i) {
                            node.schedule_update(at, prefix, rloc);
                        }
                    }
                }
                CpKind::NoLisp | CpKind::Pce => {}
            };

            // The mapping-infrastructure node a NodeDown/NodeUp event
            // addresses, per control plane (shared node for pull/push
            // planes, the site's own node for CONS and PCE).
            let mapsys_node_of = |i: usize| -> Option<NodeId> {
                match cp {
                    CpKind::LispDrop | CpKind::LispQueue | CpKind::LispDataCp => mr_node,
                    CpKind::Nerd => nerd_node,
                    CpKind::Alt { .. } => alt_nodes.first().copied(),
                    CpKind::Cons { .. } => cons_nodes.get(i).copied(),
                    CpKind::Pce => pce_nodes[i],
                    CpKind::NoLisp => None,
                }
            };

            for ev in &dynamics.events {
                match &ev.kind {
                    DynEventKind::LinkDown { site, provider } => {
                        let i = site_index(site);
                        let k = provider_index(i, provider);
                        sim.schedule_link_admin(ev.at, site_links[i][k], false);
                    }
                    DynEventKind::LinkUp { site, provider } => {
                        let i = site_index(site);
                        let k = provider_index(i, provider);
                        sim.schedule_link_admin(ev.at, site_links[i][k], true);
                    }
                    DynEventKind::Remap { site, provider } => {
                        let i = site_index(site);
                        let k = provider_index(i, provider);
                        reregister(&mut sim, ev.at, i, topo.sites[i].providers[k].rloc);
                    }
                    DynEventKind::RlocFail { site, provider } => {
                        let i = site_index(site);
                        let k = provider_index(i, provider);
                        sim.schedule_link_admin(ev.at, site_links[i][k], false);
                        let detect_at = ev.at.saturating_add(dynamics.detection_delay);
                        if let Some(fallback) = (0..topo.sites[i].providers.len()).find(|&j| j != k)
                        {
                            // Site IGP: re-home the default egress if the
                            // failed border was carrying it.
                            if k == 0 && !site_egress[i].is_empty() {
                                sim.node_mut::<FlowRouter>(site_routers[i]).schedule_route(
                                    detect_at,
                                    Prefix::DEFAULT,
                                    site_egress[i][fallback],
                                );
                            }
                            let rereg_at = ev.at.saturating_add(dynamics.reregister_delay);
                            reregister(
                                &mut sim,
                                rereg_at,
                                i,
                                topo.sites[i].providers[fallback].rloc,
                            );
                        }
                        // The domain PCE hears from the site IGP and
                        // re-paths its flow database (core::pce) — one
                        // tick after the IGP itself re-converged, so the
                        // PCE's cross-domain fix always exits via the
                        // surviving default egress regardless of
                        // node-construction order.
                        if let Some(pce) = pce_nodes[i] {
                            sim.schedule_timer(
                                pce,
                                detect_at.saturating_add(Ns(1)),
                                Pce::provider_event_token(k, false),
                            );
                        }
                    }
                    DynEventKind::NodeDown { site } => {
                        let i = site_index(site);
                        if let Some(target) = mapsys_node_of(i) {
                            sim.schedule_node_admin(ev.at, target, false);
                        }
                        // Infrastructure-side takeover: pull planes fail
                        // over client-side (the xTR replica list), but
                        // push planes need the standby to start pushing.
                        if let Some(rep) = replicas {
                            let detect_at = ev.at.saturating_add(rep.detection_delay);
                            match cp {
                                CpKind::Nerd => {
                                    if let Some(standby) = nerd_standby {
                                        sim.schedule_timer(
                                            standby,
                                            detect_at,
                                            mapsys::nerd::TOKEN_PUSH,
                                        );
                                    }
                                }
                                CpKind::Pce => {
                                    // Three synchronized moves: the site
                                    // resolver re-homes its uplink to the
                                    // standby bump, the site IGP re-routes
                                    // the DNS server address through it,
                                    // and the standby re-pushes its
                                    // mirrored flow database.
                                    if pce_standby_nodes[i].is_some() {
                                        sim.schedule_timer(
                                            dns_nodes[i],
                                            detect_at,
                                            simdns::resolver::TOKEN_FAILOVER,
                                        );
                                    }
                                    if let Some(sp) = pce_standby_ports[i] {
                                        sim.node_mut::<FlowRouter>(site_routers[i])
                                            .schedule_route(
                                                detect_at,
                                                Prefix::host(topo.sites[i].dns_addr()),
                                                sp,
                                            );
                                    }
                                    if let Some(standby) = pce_standby_nodes[i] {
                                        sim.schedule_timer(
                                            standby,
                                            detect_at,
                                            crate::pce::TOKEN_TAKEOVER,
                                        );
                                    }
                                }
                                _ => {}
                            }
                        }
                    }
                    DynEventKind::NodeUp { site } => {
                        let i = site_index(site);
                        if let Some(target) = mapsys_node_of(i) {
                            sim.schedule_node_admin(ev.at, target, true);
                        }
                    }
                }
            }
        }

        // Carve the world into latency-separated domains for the
        // conservative parallel engine (netsim::pdes). 100 µs is below
        // every WAN one-way delay the topology emits, so site-internal
        // LAN/IPC links merge while inter-site links stay cross-domain.
        // Worlds with lossy links (or a sub-threshold cut) refuse the
        // partition and run serially; either way the trace is
        // byte-identical — `PCELISP_LANES` only picks the lane count.
        sim.enable_partition(Ns::from_us(100));

        let sites: Vec<SiteWorld> = topo
            .sites
            .iter()
            .enumerate()
            .map(|(i, s)| SiteWorld {
                name: s.name.clone(),
                role: s.role,
                eid_prefix: s.eid_prefix,
                router: site_routers[i],
                host: hosts[i],
                host_addr: s.host_addr(),
                dns: dns_nodes[i],
                dns_addr: s.dns_addr(),
                pce: pce_nodes[i],
                pce_standby: pce_standby_nodes[i],
                provider_names: s.providers.iter().map(|p| p.name.clone()).collect(),
                xtrs: site_xtrs[i].clone(),
                xtr_rlocs: s.providers.iter().map(|p| p.rloc).collect(),
                provider_links: site_links[i].clone(),
                egress_ports: site_egress[i].clone(),
                dest_eids: site_dest_eids[i].clone(),
                zone: (s.role == SiteRole::Server).then(|| topo.site_zone(s)),
            })
            .collect();

        World {
            sim,
            cp,
            core,
            sites,
            infra_dns,
            mr_node,
            nerd_node,
            alt_nodes,
            cons_nodes,
            mr_standby,
            nerd_standby,
            alt_standby,
            cons_standby_nodes,
            attack_nodes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::flow_script;

    fn tcp_mode() -> FlowMode {
        FlowMode::Tcp {
            packets: 2,
            interval: Ns::from_ms(1),
            size: 100,
        }
    }

    fn run_one(cp: CpKind) -> (World, crate::hosts::FlowRecord) {
        let mut world = ScenarioSpec::fig1(cp)
            .with(|s| s.set_flows(flow_script(&[Ns::ZERO], 4, tcp_mode())))
            .build(1);
        world.sim.trace.enable();
        world.schedule_all_flows();
        world.sim.run_until(Ns::from_secs(30));
        let rec = world.records()[0].clone();
        (world, rec)
    }

    #[test]
    fn no_lisp_flow_completes() {
        let (_w, rec) = run_one(CpKind::NoLisp);
        assert!(rec.dns_time().is_some(), "dns never answered");
        assert!(rec.setup_time().is_some(), "tcp never established");
    }

    #[test]
    fn pce_flow_completes() {
        let (w, rec) = run_one(CpKind::Pce);
        assert!(rec.dns_time().is_some(), "dns: {rec:?}");
        assert!(
            rec.setup_time().is_some(),
            "tcp never established; trace:\n{}",
            w.sim.trace.render()
        );
        assert_eq!(w.total_miss_drops(), 0);
        let pce_s = w.site("S").pce.unwrap();
        let pce_d = w.site("D").pce.unwrap();
        assert!(w.sim.node_ref::<Pce>(pce_d).stats.dns_intercepts >= 1);
        let s = w.sim.node_ref::<Pce>(pce_s);
        assert!(s.stats.p_decaps >= 1);
        assert!(s.stats.pushes_sent >= 2);
    }

    #[test]
    fn lisp_drop_loses_the_syn() {
        let (w, rec) = run_one(CpKind::LispDrop);
        assert!(rec.dns_time().is_some());
        let drops = w.total_miss_drops();
        assert!(drops >= 1, "expected at least the SYN dropped, got {drops}");
    }

    #[test]
    fn lisp_queue_flow_completes() {
        let (w, rec) = run_one(CpKind::LispQueue);
        assert!(
            rec.setup_time().is_some(),
            "queued SYN must eventually establish"
        );
        assert_eq!(w.total_miss_drops(), 0);
        let queued: u64 = w
            .all_xtrs()
            .iter()
            .map(|&x| w.sim.node_ref::<Xtr>(x).stats.queued)
            .sum();
        assert!(queued >= 1);
    }

    #[test]
    fn nerd_flow_completes_without_misses() {
        let (w, rec) = run_one(CpKind::Nerd);
        assert!(rec.setup_time().is_some());
        assert_eq!(w.total_miss_drops(), 0);
        let installed: u64 = w
            .all_xtrs()
            .iter()
            .map(|&x| w.sim.node_ref::<Xtr>(x).stats.db_records_installed)
            .sum();
        assert!(installed >= 8, "4 xTRs x 2 records");
    }

    #[test]
    fn alt_and_cons_flows_complete_with_queue_policy() {
        for cp in [CpKind::Alt { hops: 3 }, CpKind::Cons { cdr_depth: 1 }] {
            let mut world = ScenarioSpec::fig1(cp)
                .with(|s| s.set_flows(flow_script(&[Ns::ZERO], 4, tcp_mode())))
                .build(1);
            world.override_pull_miss_policy(MissPolicy::Queue { max_packets: 64 });
            world.schedule_all_flows();
            world.sim.run_until(Ns::from_secs(30));
            let rec = world.records()[0].clone();
            assert!(
                rec.setup_time().is_some(),
                "{} resolution must complete",
                cp.label()
            );
        }
    }

    #[test]
    fn pce_faster_than_lisp_queue() {
        let (_, rec_pce) = run_one(CpKind::Pce);
        let (_, rec_q) = run_one(CpKind::LispQueue);
        let (_, rec_nolisp) = run_one(CpKind::NoLisp);
        let pce = rec_pce.setup_time().unwrap();
        let q = rec_q.setup_time().unwrap();
        let nolisp = rec_nolisp.setup_time().unwrap();
        assert!(pce < q, "pce {pce} vs queue {q}");
        assert!(
            pce < nolisp + Ns::from_ms(15),
            "pce {pce} vs no-lisp {nolisp}"
        );
    }

    // ---- multi-site specs ------------------------------------------------

    fn run_multi(cp: CpKind, dest_sites: usize, seed: u64) -> World {
        let mut world = ScenarioSpec::multi_site(cp, dest_sites, 4).build(seed);
        world.sim.trace.enable();
        world.schedule_all_flows();
        let horizon = world.last_flow_start() + Ns::from_secs(30);
        world.sim.run_until(horizon);
        world
    }

    #[test]
    fn multi_site_pce_resolves_across_sites() {
        let w = run_multi(CpKind::Pce, 4, 3);
        let answered = w.records().iter().filter(|r| r.t_answer.is_some()).count();
        assert_eq!(answered, w.records().len(), "every flow must resolve");
        assert_eq!(w.total_miss_drops(), 0, "pce never drops on miss");
        // More than one destination site actually received traffic
        // (Zipf spreads across sites).
        let active_sites = w
            .server_sites()
            .filter(|s| w.sim.node_ref::<ServerHost>(s.host).total_udp() > 0)
            .count();
        assert!(
            active_sites >= 2,
            "zipf must hit ≥2 sites, got {active_sites}"
        );
    }

    #[test]
    fn multi_site_pull_resolves_with_queueing() {
        let mut w = ScenarioSpec::multi_site(CpKind::LispQueue, 3, 4).build(7);
        w.schedule_all_flows();
        let horizon = w.last_flow_start() + Ns::from_secs(30);
        w.sim.run_until(horizon);
        let delivered = w.server_udp_received();
        let sent: u64 = w.records().iter().map(|r| u64::from(r.data_sent)).sum();
        assert_eq!(delivered, sent, "queue policy must not lose packets");
    }

    #[test]
    fn multi_site_deterministic_same_seed_same_trace() {
        let run = |seed: u64| -> String {
            let w = run_multi(CpKind::Pce, 3, seed);
            w.sim.trace.render()
        };
        let a = run(11);
        let b = run(11);
        assert_eq!(a, b, "same spec + seed must give identical traces");
        assert!(!a.is_empty());
        let c = run(12);
        assert_ne!(a, c, "different seed must reshuffle the workload");
    }

    #[test]
    fn deeper_dns_hierarchy_still_resolves() {
        let mut spec = ScenarioSpec::multi_site(CpKind::NoLisp, 2, 2);
        spec.topology.dns_depth = 3;
        // Re-derive the workload against the deeper suffix.
        spec.workload = Workload::PoissonZipf {
            flows: 4,
            rate_per_sec: 2.0,
            zipf_s: 1.0,
            mode: FlowMode::Udp {
                packets: 2,
                interval: Ns::from_ms(2),
                size: 200,
            },
        };
        assert_eq!(spec.topology.zone_suffix(), "sub.example");
        let mut w = spec.build(5);
        w.schedule_all_flows();
        let horizon = w.last_flow_start() + Ns::from_secs(30);
        w.sim.run_until(horizon);
        let answered = w.records().iter().filter(|r| r.t_answer.is_some()).count();
        assert_eq!(answered, 4, "4-level DNS walk must resolve");
    }

    // ---- dynamics --------------------------------------------------------

    const T_FAIL: Ns = Ns::from_ms(1500);

    /// One long CBR flow S → host-0.d0.example with D0's primary
    /// locator failing permanently at `T_FAIL`.
    fn recovery_world(cp: CpKind) -> World {
        let mut spec = ScenarioSpec::multi_site(cp, 2, 2);
        let qname = spec.topology.host_name(&spec.topology.sites[1], 0);
        spec.set_flows(vec![FlowSpec {
            start: Ns::ZERO,
            qname: Name::parse_str(&qname).expect("valid"),
            mode: FlowMode::Udp {
                packets: 80,
                interval: Ns::from_ms(50),
                size: 200,
            },
        }]);
        spec.dynamics = Some(DynamicsSpec::rloc_failure("D0", "D0a", T_FAIL));
        // Utilisation-blind ingress choice, so the PCE's primary locator
        // is the registered provider 0 like every other control plane.
        spec.pce_policy = SelectionPolicy::MinCost;
        let mut w = spec.build(1);
        w.schedule_all_flows();
        w.sim.run_until(Ns::from_secs(10));
        w
    }

    fn last_arrival(w: &World) -> Ns {
        w.udp_arrivals("D0").last().copied().unwrap_or(Ns::ZERO)
    }

    #[test]
    fn pce_recovers_quickly_after_locator_failure() {
        let w = recovery_world(CpKind::Pce);
        // The PCE of D0 re-pathed the flow and told the remote tunnel end.
        let pce = w.site("D0").pce.expect("pce world");
        let stats = &w.sim.node_ref::<Pce>(pce).stats;
        assert_eq!(stats.provider_events, 1, "{stats:?}");
        assert!(stats.repaths >= 1, "{stats:?}");
        // Traffic kept flowing after the failure, over provider D0b.
        assert!(last_arrival(&w) > T_FAIL + Ns::from_secs(1));
        let inbound = w.provider_inbound_bytes("D0");
        assert!(
            inbound[1] > 0,
            "recovered traffic must ride D0b: {inbound:?}"
        );
        // Push-based recovery: only a handful of packets died in the
        // detection window.
        let lost = w.records()[0].data_sent as u64 - w.server_udp_received();
        assert!(lost <= 5, "pce black-holed {lost} packets");
    }

    #[test]
    fn pull_recovers_via_probe_timeout_and_reresolution() {
        let w = recovery_world(CpKind::LispQueue);
        // The map-resolver applied the site's re-registration…
        let mr = w.mr_node.expect("pull world");
        assert_eq!(w.sim.node_ref::<MapResolver>(mr).updates_applied, 1);
        // …and the probing ITR noticed the dead locator and re-resolved.
        let probe_timeouts: u64 = w
            .site("S")
            .xtrs
            .iter()
            .map(|&x| w.sim.node_ref::<Xtr>(x).stats.probe_timeouts)
            .sum();
        assert!(probe_timeouts >= 1);
        assert!(last_arrival(&w) > T_FAIL + Ns::from_secs(1));
        let inbound = w.provider_inbound_bytes("D0");
        assert!(
            inbound[1] > 0,
            "recovered traffic must ride D0b: {inbound:?}"
        );
    }

    #[test]
    fn nerd_recovers_via_full_repush() {
        let w = recovery_world(CpKind::Nerd);
        let nerd = w.nerd_node.expect("nerd world");
        let auth = w.sim.node_ref::<NerdAuthority>(nerd);
        assert_eq!(auth.updates_applied, 1);
        assert!(auth.push_rounds >= 2, "boot push + failure re-push");
        assert!(last_arrival(&w) > T_FAIL + Ns::from_secs(1));
    }

    #[test]
    fn dynamics_runs_are_deterministic() {
        let run = |seed: u64| -> String {
            let mut spec = ScenarioSpec::multi_site(CpKind::LispQueue, 2, 2);
            spec.dynamics = Some(DynamicsSpec::rloc_failure("D0", "D0a", T_FAIL));
            let mut w = spec.build(seed);
            w.sim.trace.enable();
            w.schedule_all_flows();
            w.sim.run_until(Ns::from_secs(8));
            w.sim.trace.render()
        };
        assert_eq!(run(3), run(3), "failure dynamics must stay deterministic");
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "unknown site")]
    fn dynamics_event_with_unknown_site_fails_loudly() {
        let mut spec = ScenarioSpec::multi_site(CpKind::Pce, 2, 2);
        spec.dynamics = Some(DynamicsSpec::rloc_failure("D9", "D9a", T_FAIL));
        let _ = spec.build(1);
    }

    #[test]
    #[should_panic(expected = "holds 1..=200")]
    fn oversized_host_population_fails_loudly() {
        // dest_eid's last-octet plan wraps past 200 hosts; the spec must
        // reject the population instead of silently aliasing EIDs (or
        // tripping the MappingDb duplicate panic with a confusing message).
        let spec = ScenarioSpec::fig1(CpKind::Pce).with(|s| {
            s.set_dest_count(201);
            s.fine_grained_mappings = true;
        });
        let _ = spec.build(1);
    }

    #[test]
    #[should_panic(expected = "exactly one client site")]
    fn second_client_site_is_rejected() {
        // World drives a single traffic source; a second client site
        // would silently never start its flows, so build refuses it.
        let mut spec = ScenarioSpec::multi_site(CpKind::Pce, 2, 2);
        spec.topology.sites[2].role = SiteRole::Client;
        let _ = spec.build(1);
    }

    #[test]
    #[should_panic(expected = "holds 1..=200")]
    fn zero_host_server_site_fails_loudly() {
        // A generated workload against an empty zone would NXDOMAIN
        // forever and read as control-plane loss; fail at build instead.
        let _ = ScenarioSpec::multi_site(CpKind::Pce, 2, 0).build(1);
    }

    #[test]
    #[should_panic(expected = "has no hosts")]
    fn zero_host_workload_resolution_fails_loudly() {
        // resolve_flows is also callable standalone; it must reject an
        // empty server zone rather than generating unanswerable qnames.
        let mut spec = ScenarioSpec::multi_site(CpKind::Pce, 2, 2);
        spec.topology.sites[1].hosts = 0;
        let _ = spec.resolve_flows(1);
    }

    #[test]
    fn zone_suffix_matches_delegation_chain() {
        for depth in 1..=4 {
            let mut spec = ScenarioSpec::multi_site(CpKind::NoLisp, 2, 2);
            spec.topology.dns_depth = depth;
            let levels = spec.topology.level_suffixes();
            assert_eq!(levels.len(), depth.max(1));
            assert_eq!(
                spec.topology.zone_suffix(),
                levels.last().cloned().unwrap_or_default(),
                "site zones must hang off the deepest delegation level"
            );
        }
    }

    #[test]
    fn duplicate_site_prefixes_fail_loudly() {
        let mut spec = ScenarioSpec::multi_site(CpKind::LispDrop, 2, 2);
        let dup = spec.topology.sites[1].eid_prefix;
        spec.topology.sites[2].eid_prefix = dup;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| spec.build(1)));
        assert!(
            result.is_err(),
            "colliding EID prefixes must panic at build"
        );
    }

    #[test]
    fn fig1_world_handles_are_keyed_by_name() {
        let w = ScenarioSpec::fig1(CpKind::Pce).build(1);
        assert_eq!(w.sites.len(), 2);
        assert_eq!(w.site("S").role, SiteRole::Client);
        assert_eq!(w.site("D").role, SiteRole::Server);
        assert_eq!(w.site("S").provider_index("B"), Some(1));
        assert_eq!(w.site("D").provider_names, vec!["X", "Y"]);
        assert_eq!(w.site("D").dest_eids.len(), 8);
        assert_eq!(w.site("S").xtr_rlocs[0], addrs::XTR_A);
        assert_eq!(w.provider_bytes("D").len(), 2);
    }
}
