//! End-host nodes: the traffic client (`E_S`) and server peer (`E_D`).
//!
//! The client executes exactly the sequence the paper's §1 equations
//! describe: DNS lookup of the destination name, then either a TCP
//! three-way handshake followed by data, or a CBR UDP blast starting the
//! instant the DNS answer arrives (the regime in which baseline LISP
//! drops or queues packets during mapping resolution). Every timing the
//! equations mention is recorded per flow.

use inet::stack::IpStack;
use inet::tcp::{TcpEvent, TcpMachine};
use lispwire::dnswire::{Message, Name};
use lispwire::packet::Packet;
use lispwire::{ports, Ipv4Address};
use netsim::{Ctx, LazyCounter, Node, Ns, PortId};
use std::any::Any;
use std::collections::BTreeMap;

/// How a flow exercises the network after resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowMode {
    /// TCP: three-way handshake, then `packets` data segments of `size`
    /// bytes every `interval`.
    Tcp {
        /// Data segments after establishment.
        packets: u32,
        /// Inter-segment gap.
        interval: Ns,
        /// Segment payload size.
        size: usize,
    },
    /// UDP CBR starting immediately at the DNS answer: `packets` packets
    /// of `size` bytes every `interval`.
    Udp {
        /// Packet count.
        packets: u32,
        /// Inter-packet gap.
        interval: Ns,
        /// Payload size.
        size: usize,
    },
}

/// One scripted flow.
#[derive(Debug, Clone)]
pub struct FlowSpec {
    /// When the client starts the DNS lookup.
    pub start: Ns,
    /// The destination name to resolve.
    pub qname: Name,
    /// Traffic shape.
    pub mode: FlowMode,
}

/// Everything measured about one flow.
#[derive(Debug, Clone)]
pub struct FlowRecord {
    /// The spec that drove it.
    pub qname: Name,
    /// DNS query sent.
    pub t_query: Option<Ns>,
    /// DNS answer received (`T_DNS` = t_answer - t_query).
    pub t_answer: Option<Ns>,
    /// Resolved destination EID.
    pub dest: Option<Ipv4Address>,
    /// TCP established at the client (for `FlowMode::Tcp`).
    pub t_established: Option<Ns>,
    /// Data packets sent.
    pub data_sent: u32,
    /// Data packets received back... (unused for one-way flows).
    pub data_echoed: u32,
}

impl FlowRecord {
    /// `T_DNS` for this flow.
    pub fn dns_time(&self) -> Option<Ns> {
        match (self.t_query, self.t_answer) {
            (Some(q), Some(a)) => Some(a.saturating_sub(q)),
            _ => None,
        }
    }

    /// Time from DNS query to TCP establishment — the paper's full
    /// connection-setup expression.
    pub fn setup_time(&self) -> Option<Ns> {
        match (self.t_query, self.t_established) {
            (Some(q), Some(e)) => Some(e.saturating_sub(q)),
            _ => None,
        }
    }
}

// Timer token layout: [flow:24][kind:8][seq:32]
fn token(flow: usize, kind: u8, seq: u32) -> u64 {
    ((flow as u64) << 40) | (u64::from(kind) << 32) | u64::from(seq)
}
fn untoken(t: u64) -> (usize, u8, u32) {
    ((t >> 40) as usize, ((t >> 32) & 0xff) as u8, t as u32)
}
const KIND_START: u8 = 1;
const KIND_DATA: u8 = 2;

/// The scripted traffic client.
pub struct TrafficHost {
    stack: IpStack,
    resolver: Ipv4Address,
    /// The flow script. Start flow `i` by scheduling timer
    /// `token(i, KIND_START, 0)` — [`TrafficHost::start_token`].
    pub flows: Vec<FlowSpec>,
    /// Per-flow measurements.
    pub records: Vec<FlowRecord>,
    tcp: BTreeMap<usize, TcpMachine>,
    port_of_flow: Vec<u16>,
}

impl TrafficHost {
    /// A client at `addr` using `resolver`, with a flow script.
    pub fn new(addr: Ipv4Address, resolver: Ipv4Address, flows: Vec<FlowSpec>) -> Self {
        let records = flows
            .iter()
            .map(|f| FlowRecord {
                qname: f.qname.clone(),
                t_query: None,
                t_answer: None,
                dest: None,
                t_established: None,
                data_sent: 0,
                data_echoed: 0,
            })
            .collect();
        let port_of_flow = (0..flows.len()).map(|i| 41000 + i as u16).collect();
        Self {
            stack: IpStack::new(addr),
            resolver,
            flows,
            records,
            tcp: BTreeMap::new(),
            port_of_flow,
        }
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Address {
        self.stack.addr
    }

    /// The timer token that starts flow `i` (schedule it at the spec's
    /// start time from outside; `World::schedule_all_flows` does this
    /// for every scripted flow).
    pub fn start_token(i: usize) -> u64 {
        token(i, KIND_START, 0)
    }

    fn send_data(&mut self, ctx: &mut Ctx<'_, Packet>, flow: usize, seq: u32) {
        let Some(dest) = self.records[flow].dest else {
            return;
        };
        let (packets, interval, size, is_tcp) = match self.flows[flow].mode {
            FlowMode::Tcp {
                packets,
                interval,
                size,
            } => (packets, interval, size, true),
            FlowMode::Udp {
                packets,
                interval,
                size,
            } => (packets, interval, size, false),
        };
        if seq >= packets {
            return;
        }
        let payload = vec![(seq & 0xff) as u8; size];
        let pkt = if is_tcp {
            let Some(m) = self.tcp.get_mut(&flow) else {
                return;
            };
            let seg = m.data_segment(size);
            self.stack.tcp(dest, &seg, payload)
        } else {
            self.stack.udp(self.port_of_flow[flow], dest, 7001, payload)
        };
        ctx.send(0, pkt);
        self.records[flow].data_sent += 1;
        if seq + 1 < packets {
            ctx.set_timer(interval, token(flow, KIND_DATA, seq + 1));
        }
    }
}

impl Node<Packet> for TrafficHost {
    fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, t: u64) {
        let (flow, kind, seq) = untoken(t);
        if flow >= self.flows.len() {
            return;
        }
        match kind {
            KIND_START => {
                let qname = self.flows[flow].qname.clone();
                self.records[flow].t_query = Some(ctx.now());
                let q = Message::query_a(flow as u16, qname.clone(), true);
                let pkt = self
                    .stack
                    .dns(self.port_of_flow[flow], self.resolver, ports::DNS, q);
                ctx.trace(format!(
                    "E_S {} resolves {} (flow {})",
                    self.stack.addr, qname, flow
                ));
                ctx.send(0, pkt);
            }
            KIND_DATA => self.send_data(ctx, flow, seq),
            _ => {}
        }
    }

    fn on_packet(&mut self, ctx: &mut Ctx<'_, Packet>, _port: PortId, pkt: Packet) {
        if pkt.is_corrupt() {
            return; // failed end-to-end checksum (typed form)
        }
        match pkt {
            // DNS answer.
            Packet::Dns { ports: p, msg, .. } if p.src == ports::DNS => {
                if !msg.is_response {
                    return;
                }
                let flow = msg.id as usize;
                if flow >= self.flows.len() || p.dst != self.port_of_flow[flow] {
                    return;
                }
                self.records[flow].t_answer = Some(ctx.now());
                self.records[flow].dest = msg.first_answer_a();
                ctx.trace(format!(
                    "step8: E_S {} got DNS answer {:?} for flow {}",
                    self.stack.addr, self.records[flow].dest, flow
                ));
                let Some(dest) = self.records[flow].dest else {
                    return;
                };
                match self.flows[flow].mode {
                    FlowMode::Tcp { .. } => {
                        let mut m =
                            TcpMachine::new(self.port_of_flow[flow], 7001, 1000 + flow as u32);
                        let syn = m.connect(ctx.now());
                        self.tcp.insert(flow, m);
                        let pkt = self.stack.tcp(dest, &syn, vec![]);
                        ctx.trace(format!(
                            "E_S {} SYN to {} (flow {})",
                            self.stack.addr, dest, flow
                        ));
                        ctx.send(0, pkt);
                    }
                    FlowMode::Udp { .. } => {
                        // CBR starts immediately — the paper's loss window.
                        self.send_data(ctx, flow, 0);
                    }
                }
            }
            // TCP segment.
            Packet::Tcp {
                ip, seg, payload, ..
            } => {
                let src = ip.src;
                let flow = self.port_of_flow.iter().position(|&p| p == seg.dst_port);
                let Some(flow) = flow else { return };
                let Some(m) = self.tcp.get_mut(&flow) else {
                    return;
                };
                match m.on_segment(ctx.now(), &seg, payload.len()) {
                    TcpEvent::SendAndEstablish(ack) => {
                        self.records[flow].t_established = Some(ctx.now());
                        ctx.trace(format!(
                            "E_S {} established flow {} ({} -> {})",
                            self.stack.addr, flow, self.stack.addr, src
                        ));
                        let pkt = self.stack.tcp(src, &ack, vec![]);
                        ctx.send(0, pkt);
                        // Begin the data phase.
                        ctx.set_timer(Ns::ZERO, token(flow, KIND_DATA, 0));
                    }
                    TcpEvent::Send(seg_out) => {
                        let pkt = self.stack.tcp(src, &seg_out, vec![]);
                        ctx.send(0, pkt);
                    }
                    TcpEvent::Established | TcpEvent::None => {}
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

/// The passive peer: accepts TCP handshakes, counts TCP and UDP payload
/// arrivals per remote host.
pub struct ServerHost {
    stack: IpStack,
    /// Echo received UDP payloads back to the sender (generates return
    /// traffic for the inbound-TE experiments).
    pub echo_udp: bool,
    tcp: BTreeMap<(Ipv4Address, u16), TcpMachine>,
    /// UDP data packets received, per source.
    pub udp_received: BTreeMap<Ipv4Address, u64>,
    /// Arrival time of every UDP data packet, in order — the outage
    /// signal of the failure-recovery experiments (E10): the longest
    /// inter-arrival gap brackets the black-hole window.
    pub udp_arrivals: Vec<Ns>,
    /// TCP data segments received, per source.
    pub tcp_data_received: BTreeMap<Ipv4Address, u64>,
    /// Establishment times observed at the server.
    pub established: Vec<(Ipv4Address, Ns)>,
    /// Arrival time of the first UDP packet per source.
    pub first_udp_at: BTreeMap<Ipv4Address, Ns>,
    /// Arrival time of the first UDP packet per *destination* EID — the
    /// per-flow outage signal of the availability experiment (E13),
    /// where concurrent flows from one client host differ only in the
    /// destination EID they address.
    pub first_udp_at_dst: BTreeMap<Ipv4Address, Ns>,
    /// UDP data packets received, per destination EID.
    pub udp_received_by_dst: BTreeMap<Ipv4Address, u64>,
    ctr_udp: LazyCounter,
    ctr_tcp_data: LazyCounter,
}

impl ServerHost {
    /// A server at `addr`.
    pub fn new(addr: Ipv4Address) -> Self {
        Self {
            stack: IpStack::new(addr),
            echo_udp: false,
            tcp: BTreeMap::new(),
            udp_received: BTreeMap::new(),
            udp_arrivals: Vec::new(),
            tcp_data_received: BTreeMap::new(),
            established: Vec::new(),
            first_udp_at: BTreeMap::new(),
            first_udp_at_dst: BTreeMap::new(),
            udp_received_by_dst: BTreeMap::new(),
            ctr_udp: LazyCounter::new(),
            ctr_tcp_data: LazyCounter::new(),
        }
    }

    /// This host's address.
    pub fn addr(&self) -> Ipv4Address {
        self.stack.addr
    }

    /// Total UDP data packets received.
    pub fn total_udp(&self) -> u64 {
        self.udp_received.values().sum()
    }

    /// Total TCP data segments received.
    pub fn total_tcp_data(&self) -> u64 {
        self.tcp_data_received.values().sum()
    }
}

impl Node<Packet> for ServerHost {
    fn on_packet(&mut self, ctx: &mut Ctx<'_, Packet>, _port: PortId, pkt: Packet) {
        if pkt.is_corrupt() {
            return; // failed end-to-end checksum (typed form)
        }
        match pkt {
            Packet::Udp {
                ip,
                ports: p,
                payload,
            } if p.dst == 7001 => {
                let _ = &self.stack; // identity only; replies use the addressed dst
                let (src, dst) = (ip.src, ip.dst);
                *self.udp_received.entry(src).or_insert(0) += 1;
                self.first_udp_at.entry(src).or_insert_with(|| ctx.now());
                self.first_udp_at_dst.entry(dst).or_insert_with(|| ctx.now());
                *self.udp_received_by_dst.entry(dst).or_insert(0) += 1;
                self.udp_arrivals.push(ctx.now());
                self.ctr_udp.add(ctx, "server.udp_received", 1);
                if self.echo_udp {
                    let reply = IpStack::new(dst).udp(p.dst, src, p.src, payload);
                    ctx.send(0, reply);
                }
            }
            Packet::Tcp { ip, seg, payload } => {
                let (src, dst) = (ip.src, ip.dst);
                // The server answers as whichever of its EIDs was
                // addressed (multi-address host), so checksums and the
                // client's flow demux line up.
                let reply_stack = IpStack::new(dst);
                let key = (src, seg.src_port);
                let m = self
                    .tcp
                    .entry(key)
                    .or_insert_with(|| TcpMachine::new(seg.dst_port, seg.src_port, 9000));
                if !payload.is_empty() {
                    *self.tcp_data_received.entry(src).or_insert(0) += 1;
                    self.ctr_tcp_data.add(ctx, "server.tcp_data_received", 1);
                }
                match m.on_segment(ctx.now(), &seg, payload.len()) {
                    TcpEvent::Send(out) => {
                        let pkt = reply_stack.tcp(src, &out, vec![]);
                        ctx.send(0, pkt);
                    }
                    TcpEvent::Established => {
                        self.established.push((src, ctx.now()));
                        ctx.trace(format!("E_D {dst} established with {src}"));
                    }
                    TcpEvent::SendAndEstablish(out) => {
                        self.established.push((src, ctx.now()));
                        let pkt = reply_stack.tcp(src, &out, vec![]);
                        ctx.send(0, pkt);
                    }
                    TcpEvent::None => {}
                }
            }
            _ => {}
        }
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
    fn as_any_ref(&self) -> &dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{LinkCfg, Sim};

    fn a(o: [u8; 4]) -> Ipv4Address {
        Ipv4Address(o)
    }

    /// A stub resolver answering every query with a fixed address after a
    /// fixed delay.
    struct StubDns {
        stack: IpStack,
        answer: Ipv4Address,
        delay: Ns,
        queue: std::collections::VecDeque<Packet>,
    }
    impl Node<Packet> for StubDns {
        fn on_packet(&mut self, ctx: &mut Ctx<'_, Packet>, _p: PortId, pkt: Packet) {
            let Packet::Dns {
                ip,
                ports: p,
                msg: q,
            } = pkt
            else {
                return;
            };
            if p.dst != ports::DNS {
                return;
            }
            let mut r = Message::response_to(&q);
            if let Some(question) = q.question() {
                r.answers.push(lispwire::dnswire::Record::a(
                    question.name.clone(),
                    self.answer,
                    60,
                ));
            }
            let pkt = self.stack.dns(ports::DNS, ip.src, p.src, r);
            self.queue.push_back(pkt);
            ctx.set_timer(self.delay, 1);
        }
        fn on_timer(&mut self, ctx: &mut Ctx<'_, Packet>, _t: u64) {
            if let Some(p) = self.queue.pop_front() {
                ctx.send(0, p);
            }
        }
        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
        fn as_any_ref(&self) -> &dyn Any {
            self
        }
    }

    /// client - router - {dns, server}; returns (sim, client, server).
    fn world(mode: FlowMode, dns_delay: Ns) -> (Sim<Packet>, netsim::NodeId, netsim::NodeId) {
        use inet::{Prefix, Router};
        let mut sim: Sim<Packet> = Sim::new(8);
        sim.trace.enable();
        let c_addr = a([100, 0, 0, 5]);
        let s_addr = a([101, 0, 0, 7]);
        let dns_addr = a([10, 0, 0, 53]);
        let client = sim.add_node(
            "client",
            Box::new(TrafficHost::new(
                c_addr,
                dns_addr,
                vec![FlowSpec {
                    start: Ns::ZERO,
                    qname: Name::parse_str("host.d.example").unwrap(),
                    mode,
                }],
            )),
        );
        let server = sim.add_node("server", Box::new(ServerHost::new(s_addr)));
        let dns = sim.add_node(
            "dns",
            Box::new(StubDns {
                stack: IpStack::new(dns_addr),
                answer: s_addr,
                delay: dns_delay,
                queue: Default::default(),
            }),
        );
        let router = sim.add_node("router", Box::new(Router::new()));
        let (_, pc) = sim.connect(client, router, LinkCfg::wan(Ns::from_ms(10)));
        let (_, ps) = sim.connect(server, router, LinkCfg::wan(Ns::from_ms(10)));
        let (_, pd) = sim.connect(dns, router, LinkCfg::wan(Ns::from_ms(10)));
        {
            let r = sim.node_mut::<Router>(router);
            r.add_route(Prefix::host(c_addr), pc);
            r.add_route(Prefix::host(s_addr), ps);
            r.add_route(Prefix::host(dns_addr), pd);
        }
        sim.schedule_timer(client, Ns::ZERO, TrafficHost::start_token(0));
        (sim, client, server)
    }

    #[test]
    fn tcp_flow_full_sequence() {
        let (mut sim, client, server) = world(
            FlowMode::Tcp {
                packets: 3,
                interval: Ns::from_ms(1),
                size: 100,
            },
            Ns::from_ms(50),
        );
        sim.run();
        let rec = sim.node_ref::<TrafficHost>(client).records[0].clone();
        // T_DNS = RTT to resolver (40 ms) + 50 ms stub delay = 90 ms.
        let tdns = rec.dns_time().unwrap();
        assert!(
            tdns >= Ns::from_ms(90) && tdns < Ns::from_ms(95),
            "tdns {tdns}"
        );
        // Setup = T_DNS + 2 OWD(c,s) = +40 ms.
        let setup = rec.setup_time().unwrap();
        assert!(setup >= tdns + Ns::from_ms(40), "setup {setup}");
        assert!(setup < tdns + Ns::from_ms(45), "setup {setup}");
        assert_eq!(rec.data_sent, 3);
        let srv = sim.node_ref::<ServerHost>(server);
        assert_eq!(srv.total_tcp_data(), 3);
        assert_eq!(srv.established.len(), 1);
    }

    #[test]
    fn udp_flow_starts_at_answer() {
        let (mut sim, client, server) = world(
            FlowMode::Udp {
                packets: 5,
                interval: Ns::from_ms(2),
                size: 200,
            },
            Ns::from_ms(50),
        );
        sim.run();
        let rec = sim.node_ref::<TrafficHost>(client).records[0].clone();
        assert_eq!(rec.data_sent, 5);
        assert!(rec.t_established.is_none());
        let srv = sim.node_ref::<ServerHost>(server);
        assert_eq!(srv.total_udp(), 5);
        // First packet lands one OWD after the answer.
        let t_ans = rec.t_answer.unwrap();
        let first = srv.first_udp_at[&a([100, 0, 0, 5])];
        assert!(first >= t_ans + Ns::from_ms(20) && first < t_ans + Ns::from_ms(25));
    }
}
