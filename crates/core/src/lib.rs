//! `pcelisp` — a PCE-based control plane for LISP.
//!
//! Reproduction of *“Advantages of a PCE-based Control Plane for LISP”*
//! (Castro et al., ACM CoNEXT 2008). The crate provides:
//!
//! * [`pce`] — the paper's contribution: the PCE node that sits on the
//!   data path of a domain's DNS server, transparently observes the
//!   iterative resolution (steps 2–5), encapsulates the final DNS reply
//!   together with the precomputed EID-to-RLOC mapping on the special
//!   port `P` (step 6), and — on the requesting side — forwards the
//!   answer to the DNS server while pushing the
//!   `(E_S, E_D, RLOC_S, RLOC_D)` flow mapping to **all** local ITRs
//!   (steps 7a/7b), with ingress selection by an online IRC engine
//!   (step 1).
//! * [`hosts`] — end-host nodes: a traffic client that resolves a name,
//!   opens a TCP connection or blasts CBR UDP, and records every timing
//!   the paper's equations mention; and a server peer.
//! * [`scenario`] — builders for the paper's Fig. 1 world: two ASes, two
//!   providers each (A/B and X/Y with prefixes 10–13/8), a three-level
//!   DNS hierarchy, and any of the competing control planes installed.
//! * [`workload`] — deterministic Poisson/Zipf flow workload generation.
//! * [`experiments`] — the E1–E8 / A1–A2 harnesses of DESIGN.md, each
//!   returning a typed result and a printable table.
//!
//! ```no_run
//! use pcelisp::prelude::*;
//!
//! // Build the Fig. 1 world with the PCE control plane and run one flow.
//! let mut world = Fig1Builder::new(CpKind::Pce).build(1);
//! world.start_flow(0);
//! world.sim.run_until(Ns::from_secs(5));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod experiments;
pub mod hosts;
pub mod pce;
pub mod scenario;
pub mod workload;

/// Convenient re-exports for examples and benches.
pub mod prelude {
    pub use crate::experiments;
    pub use crate::hosts::{FlowMode, FlowSpec, ServerHost, TrafficHost};
    pub use crate::pce::{Pce, PceConfig};
    pub use crate::scenario::{CpKind, Fig1Builder, Fig1World};
    pub use crate::workload::{PoissonArrivals, ZipfPicker};
    pub use inet::{Prefix, Router};
    pub use lispdp::{CpMode, MissPolicy, Xtr};
    pub use lispwire::Ipv4Address;
    pub use netsim::{LinkCfg, Ns, Sim};
    pub use simstats::{Histogram, Summary, Table};
}
