//! `pcelisp` — a PCE-based control plane for LISP.
//!
//! Reproduction of *“Advantages of a PCE-based Control Plane for LISP”*
//! (Castro et al., ACM CoNEXT 2008). The crate provides:
//!
//! * [`pce`] — the paper's contribution: the PCE node that sits on the
//!   data path of a domain's DNS server, transparently observes the
//!   iterative resolution (steps 2–5), encapsulates the final DNS reply
//!   together with the precomputed EID-to-RLOC mapping on the special
//!   port `P` (step 6), and — on the requesting side — forwards the
//!   answer to the DNS server while pushing the
//!   `(E_S, E_D, RLOC_S, RLOC_D)` flow mapping to **all** local ITRs
//!   (steps 7a/7b), with ingress selection by an online IRC engine
//!   (step 1).
//! * [`hosts`] — end-host nodes: a traffic client that resolves a name,
//!   opens a TCP connection or blasts CBR UDP, and records every timing
//!   the paper's equations mention; and a server peer.
//! * [`spec`] — the declarative scenario layer: [`spec::TopologySpec`]
//!   / [`spec::ScenarioSpec`] describe sites (EID prefix, providers
//!   with per-link OWD/bandwidth/loss, host population), DNS depth,
//!   mapping-system placement, control plane and workload;
//!   `build(seed)` returns a [`spec::World`] whose handles are keyed by
//!   site/provider name. [`spec::ScenarioSpec::fig1`] reproduces the
//!   paper's Fig. 1 world exactly; [`spec::ScenarioSpec::multi_site`]
//!   generates N-site scale scenarios; [`spec::DynamicsSpec`] layers
//!   deterministic timed dynamics on top — link failures, locator
//!   failures with their control-plane aftermath, and mapping
//!   re-registrations (DESIGN.md §7).
//! * [`scenario`] — the control-plane menu ([`scenario::CpKind`]), the
//!   site-internal [`scenario::FlowRouter`], and the figure's
//!   well-known addresses.
//! * [`workload`] — deterministic Poisson/Zipf flow workload generation.
//! * [`adversary`] — scripted attacker nodes for the graceful-degradation
//!   study (E12): Map-Request floods, cache poisoning, prefix
//!   overclaiming, all replay-deterministic (DESIGN.md §10).
//! * [`experiments`] — the E1–E12 / A1–A2 harnesses of DESIGN.md behind
//!   the [`experiments::Experiment`] trait: each returns an
//!   [`experiments::ExpReport`] with typed rows, printable tables and
//!   JSON serialization, and [`experiments::registry`] drives them all.
//!
//! ```no_run
//! use pcelisp::prelude::*;
//!
//! // Build the Fig. 1 world with the PCE control plane and run one flow.
//! let mut world = ScenarioSpec::fig1(CpKind::Pce).build(1);
//! world.start_flow(0);
//! world.sim.run_until(Ns::from_secs(5));
//!
//! // Or a 32-destination-site scale world with Zipf popularity.
//! let mut big = ScenarioSpec::multi_site(CpKind::Pce, 32, 4).build(1);
//! big.schedule_all_flows();
//! big.sim.run_until(big.last_flow_start() + Ns::from_secs(30));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod adversary;
pub mod experiments;
pub mod hosts;
pub mod pce;
pub mod scenario;
pub mod spec;
pub mod workload;

/// Convenient re-exports for examples and benches.
pub mod prelude {
    pub use crate::adversary::{AttackNode, ScanRng};
    pub use crate::experiments::{self, ExpReport, Experiment};
    pub use crate::hosts::{FlowMode, FlowSpec, ServerHost, TrafficHost};
    pub use crate::pce::{Pce, PceConfig};
    pub use crate::scenario::{CpKind, FlowRouter};
    pub use crate::spec::{
        AttackerSpec, DefenseSpec, DynEvent, DynEventKind, DynamicsSpec, ProviderSpec,
        ScenarioSpec, SelectionPolicy, SiteRole, SiteSpec, SiteWorld, TopologySpec, Workload,
        World,
    };
    pub use crate::workload::{PoissonArrivals, ZipfPicker};
    pub use inet::{Prefix, Router};
    pub use lispdp::{CacheSpec, CpMode, DefenseCfg, EvictionPolicy, MissPolicy, Xtr};
    pub use lispwire::Ipv4Address;
    pub use netsim::{LinkCfg, Ns, Sim};
    pub use simstats::{Histogram, Summary, Table};
}
