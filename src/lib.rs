//! `pcelisp-repro` — the workspace root package.
//!
//! This crate exists to host the repo-level integration tests (`tests/`)
//! and runnable examples (`examples/`); the actual implementation lives
//! in the `crates/` workspace members. See `DESIGN.md` for the
//! architecture and `ROADMAP.md` for the growth plan.

#![forbid(unsafe_code)]

pub use inet;
pub use lispwire;
pub use mapsys;
pub use netsim;
pub use pcelisp;
