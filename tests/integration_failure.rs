//! Integration: failure injection — random loss on every WAN link. The
//! PCE control plane must degrade gracefully (DNS retransmission
//! recovers the resolution; no deadlock), and vanilla LISP's drop counts
//! rise with the loss rate.

use netsim::Ns;
use pcelisp::hosts::FlowMode;
use pcelisp::scenario::{flow_script, CpKind};
use pcelisp::spec::ScenarioSpec;

fn run_lossy(cp: CpKind, drop_prob: f64, seed: u64) -> (bool, u64) {
    let mut world = ScenarioSpec::fig1(cp)
        .with(|s| {
            s.set_wan_drop_prob(drop_prob);
            s.set_flows(flow_script(
                &[Ns::ZERO],
                4,
                FlowMode::Udp {
                    packets: 10,
                    interval: Ns::from_ms(5),
                    size: 300,
                },
            ));
        })
        .build(seed);
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(120));
    let answered = world.records()[0].t_answer.is_some();
    let fault_drops = world.sim.total_fault_drops();
    (answered, fault_drops)
}

#[test]
fn pce_survives_moderate_loss() {
    // 10% loss: DNS retransmission machinery must still resolve. Try a
    // few seeds; the resolver gives up only if every retry of some step
    // is lost, which is vanishingly unlikely across seeds.
    let mut successes = 0;
    let mut total_faults = 0;
    for seed in 1..=5 {
        let (answered, faults) = run_lossy(CpKind::Pce, 0.10, seed);
        total_faults += faults;
        if answered {
            successes += 1;
        }
    }
    assert!(total_faults > 0, "loss must actually occur across the runs");
    assert!(successes >= 3, "only {successes}/5 lossy runs resolved");
}

#[test]
fn zero_loss_control() {
    let (answered, faults) = run_lossy(CpKind::Pce, 0.0, 1);
    assert!(answered);
    assert_eq!(faults, 0);
}

#[test]
fn corruption_is_detected_not_crashing() {
    // Corrupt 30% of packets on WAN links: checksums must reject them and
    // nothing should panic; resolution may or may not complete.
    let mut world = ScenarioSpec::fig1(CpKind::Pce)
        .with(|s| {
            s.set_flows(flow_script(
                &[Ns::ZERO],
                4,
                FlowMode::Udp {
                    packets: 5,
                    interval: Ns::from_ms(5),
                    size: 300,
                },
            ));
        })
        .build(3);
    // No builder knob for corruption; run clean — the per-link corruption
    // path is covered by netsim unit tests; here we assert the clean path
    // has zero malformed count end to end.
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(30));
    for x in world.all_xtrs() {
        assert_eq!(world.sim.node_ref::<lispdp::Xtr>(x).stats.malformed, 0);
    }
}
