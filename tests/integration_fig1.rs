//! Integration: the full Fig. 1 message sequence across every crate —
//! wire formats, DES engine, routers, DNS hierarchy, xTRs, PCEs.

use pcelisp::experiments::e1_fig1::run_fig1_trace;
use pcelisp::experiments::e7_reverse::run_reverse;

#[test]
fn fig1_steps_in_paper_order_with_no_drops() {
    let r = run_fig1_trace(0);
    assert!(
        r.installed_before_answer,
        "mapping must precede the DNS answer\n{}",
        r.trace
    );
    assert!(r.no_drops);
    assert!(r.established);
    // The eight labelled steps appear in order.
    let labels: Vec<&str> = r.step_times.iter().map(|(l, _)| l.as_str()).collect();
    assert_eq!(labels.len(), 8);
    assert!(labels[0].starts_with("1:"));
    assert!(labels[7].starts_with("8:"));
}

#[test]
fn reverse_mapping_completes_two_way_resolution() {
    let r = run_reverse(4, 7);
    assert!(r.reverse_entries_complete);
    assert!(r.db_entries >= 4);
    assert!(r.t_db_update >= r.t_first_decap);
}
