//! Integration: parallel sweep execution preserves the determinism
//! contract (DESIGN.md §2/§8).
//!
//! * Property: `exp_all`-style reports — registry experiments rendered
//!   to tables *and* typed JSON — are byte-identical for
//!   jobs ∈ {1, 2, 8}, across seeds. Cells share nothing and results
//!   reassemble in input order, so thread count must never leak into a
//!   report.
//! * The `jobs = 0` auto setting resolves to *some* worker count but
//!   still produces the same bytes.

use pcelisp::experiments::{by_name, Experiment};
use proptest::prelude::*;

/// Render an experiment the way `exp_all --json` consumes it: printed
/// tables plus the typed JSON document.
fn report_bytes(exp: &dyn Experiment, seed: u64, jobs: usize) -> String {
    let report = exp.run(seed, jobs);
    let tables: String = report
        .tables()
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n");
    format!("{tables}\n{}", report.to_json())
}

/// Assert one experiment's report is byte-identical at every job count.
fn assert_identical_across_jobs(name: &str, seed: u64, job_counts: &[usize]) {
    let exp = by_name(name).expect("registered");
    let serial = report_bytes(exp.as_ref(), seed, 1);
    for &jobs in job_counts {
        let parallel = report_bytes(exp.as_ref(), seed, jobs);
        assert_eq!(
            serial, parallel,
            "{name} seed {seed} drifted between jobs=1 and jobs={jobs}"
        );
    }
}

proptest! {
    /// Any seed: the cheapest grid experiment (E8, 5 cells) keeps its
    /// full report byte-identical for jobs ∈ {1, 2, 8}.
    #[test]
    fn e8_report_byte_identical_across_job_counts(seed in 1u64..1_000_000) {
        assert_identical_across_jobs("e8", seed, &[2, 8]);
    }
}

/// The wide sweeps, jobs ∈ {1, 2, 8} across three seeds each — the
/// `exp_all`-shaped grids (cp × owd and cp × sites) that exercise every
/// cell-runner family.
#[test]
fn grid_sweeps_byte_identical_across_seeds_and_jobs() {
    for seed in [1u64, 2, 7] {
        for name in ["e2", "e9"] {
            assert_identical_across_jobs(name, seed, &[2, 8]);
        }
    }
}

/// One deterministic spot check for each remaining grid experiment so
/// the whole registry is covered (jobs 1 vs 3).
#[test]
fn remaining_sweeps_identical_serial_vs_parallel() {
    for name in ["e3", "e4", "e5", "e6", "e10", "e13"] {
        assert_identical_across_jobs(name, 5, &[3]);
    }
}

/// E11 is the sweep parallelism exists for; pin its serial/parallel
/// identity at the default seed (the golden seed).
#[test]
fn e11_identical_serial_vs_parallel() {
    assert_identical_across_jobs("e11", 1, &[4]);
}

/// Auto job resolution (`jobs = 0`) must also produce identical bytes.
#[test]
fn auto_jobs_identical_to_serial() {
    assert_identical_across_jobs("e2", 9, &[0]);
}

// ---------------------------------------------------------------------------
// Single-run parallelism (netsim::pdes): one world, many lanes, one trace.
//
// The sweep tests above parallelise across *cells*; these parallelise
// *inside* a single simulation run and assert the §2 determinism
// contract survives: trace, counters, event count, and clock are
// byte-identical at every lane count.
// ---------------------------------------------------------------------------

use netsim::Ns;
use pcelisp::hosts::{FlowMode, FlowSpec};
use pcelisp::scenario::CpKind;
use pcelisp::spec::{DynEventKind, DynamicsSpec, ScenarioSpec};

/// Everything a run emits that the determinism contract covers.
type Fingerprint = (String, Vec<(String, u64)>, u64, Ns);

/// Build `spec` at `seed`, run it to 8 s with `lanes` lanes, and return
/// the observable output. Also asserts the world actually partitioned
/// (> 1 domain) so the lanes > 1 comparisons are not vacuously serial.
fn run_spec(spec: &ScenarioSpec, seed: u64, lanes: usize) -> Fingerprint {
    let mut world = spec.build(seed);
    assert!(
        world.sim.partition_domains() > 1,
        "world failed to partition; parallel path untested"
    );
    world.sim.trace.enable();
    world.schedule_all_flows();
    world.sim.run_until_with_lanes(Ns::from_secs(8), lanes);
    (
        world.sim.trace.render(),
        world
            .sim
            .counters()
            .sorted()
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        world.sim.events_processed(),
        world.sim.now(),
    )
}

/// Assert `spec` at `seed` is lane-count-invariant (serial vs 2 and 8).
fn assert_lane_invariant(spec: &ScenarioSpec, seed: u64) {
    let serial = run_spec(spec, seed, 1);
    assert!(!serial.0.is_empty(), "workload produced no trace");
    for lanes in [2usize, 8] {
        let par = run_spec(spec, seed, lanes);
        assert_eq!(
            serial, par,
            "seed {seed} drifted between lanes=1 and lanes={lanes}"
        );
    }
}

/// A multi-site world with explicit UDP flows to both dest sites.
fn flowing_multi_site(cp: CpKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::multi_site(cp, 2, 2);
    let flows: Vec<FlowSpec> = (0..2)
        .map(|site| FlowSpec {
            start: Ns::from_ms(10 * (site + 1) as u64),
            qname: lispwire::dnswire::Name::parse_str(
                &spec.topology.host_name(&spec.topology.sites[1 + site], 0),
            )
            .expect("valid"),
            mode: FlowMode::Udp {
                packets: 40,
                interval: Ns::from_ms(25),
                size: 256,
            },
        })
        .collect();
    spec.set_flows(flows);
    spec
}

/// The failure-heavy world from `integration_dynamics`: RLOC failure
/// plus link churn, i.e. `LinkAdmin` events and stall-buffer flushes
/// crossing domain boundaries mid-run.
fn churning_spec(cp: CpKind) -> ScenarioSpec {
    let mut spec = flowing_multi_site(cp);
    spec.dynamics = Some(
        DynamicsSpec::rloc_failure("D0", "D0a", Ns::from_ms(1500))
            .with_event(
                Ns::from_ms(800),
                DynEventKind::LinkDown {
                    site: "S".into(),
                    provider: "Sb".into(),
                },
            )
            .with_event(
                Ns::from_ms(2200),
                DynEventKind::LinkUp {
                    site: "S".into(),
                    provider: "Sb".into(),
                },
            ),
    );
    spec
}

/// The Fig. 1 world (one client, one dest, full control plane).
#[test]
fn fig1_single_run_byte_identical_across_lanes() {
    for cp in [CpKind::Pce, CpKind::LispQueue] {
        let spec = ScenarioSpec::fig1(cp);
        assert_lane_invariant(&spec, 1);
    }
}

/// Multi-site with dynamics (link churn + RLOC failure) — the stress
/// case for cross-domain `LinkAdmin` and stall-flush ordering.
#[test]
fn dynamics_single_run_byte_identical_across_lanes() {
    for cp in [CpKind::Pce, CpKind::LispQueue] {
        let spec = churning_spec(cp);
        assert_lane_invariant(&spec, 3);
    }
}

proptest! {
    /// Any seed: the multi-site world replays byte-identically at
    /// lanes ∈ {1, 2, 8}.
    #[test]
    fn multi_site_single_run_byte_identical_any_seed(seed in 1u64..1_000_000) {
        assert_lane_invariant(&flowing_multi_site(CpKind::Pce), seed);
    }
}

/// A mapping-node crash/restart cycle (E13's outage) with the warm
/// standbys armed — `NodeAdmin` events, down-drops, takeover timers and
/// failover re-routes must all survive the lane scheduler unchanged.
#[test]
fn node_crash_single_run_byte_identical_across_lanes() {
    for cp in [CpKind::Pce, CpKind::LispQueue] {
        let mut spec = flowing_multi_site(cp);
        spec.dynamics = Some(pcelisp::spec::DynamicsSpec::mapsys_outage(
            "S",
            Ns::from_ms(1500),
            Ns::from_ms(4000),
        ));
        spec.replicas = Some(pcelisp::spec::ReplicaSpec::default());
        spec.retry = Some(pcelisp::spec::RetrySpec {
            retransmit: Some(Ns::from_ms(500)),
            max_tries: Some(2),
            cooldown: Some(Ns::from_secs(1)),
            ..pcelisp::spec::RetrySpec::default()
        });
        assert_lane_invariant(&spec, 7);
    }
}
