//! Integration: parallel sweep execution preserves the determinism
//! contract (DESIGN.md §2/§8).
//!
//! * Property: `exp_all`-style reports — registry experiments rendered
//!   to tables *and* typed JSON — are byte-identical for
//!   jobs ∈ {1, 2, 8}, across seeds. Cells share nothing and results
//!   reassemble in input order, so thread count must never leak into a
//!   report.
//! * The `jobs = 0` auto setting resolves to *some* worker count but
//!   still produces the same bytes.

use pcelisp::experiments::{by_name, Experiment};
use proptest::prelude::*;

/// Render an experiment the way `exp_all --json` consumes it: printed
/// tables plus the typed JSON document.
fn report_bytes(exp: &dyn Experiment, seed: u64, jobs: usize) -> String {
    let report = exp.run(seed, jobs);
    let tables: String = report
        .tables()
        .iter()
        .map(|t| t.render())
        .collect::<Vec<_>>()
        .join("\n");
    format!("{tables}\n{}", report.to_json())
}

/// Assert one experiment's report is byte-identical at every job count.
fn assert_identical_across_jobs(name: &str, seed: u64, job_counts: &[usize]) {
    let exp = by_name(name).expect("registered");
    let serial = report_bytes(exp.as_ref(), seed, 1);
    for &jobs in job_counts {
        let parallel = report_bytes(exp.as_ref(), seed, jobs);
        assert_eq!(
            serial, parallel,
            "{name} seed {seed} drifted between jobs=1 and jobs={jobs}"
        );
    }
}

proptest! {
    /// Any seed: the cheapest grid experiment (E8, 5 cells) keeps its
    /// full report byte-identical for jobs ∈ {1, 2, 8}.
    #[test]
    fn e8_report_byte_identical_across_job_counts(seed in 1u64..1_000_000) {
        assert_identical_across_jobs("e8", seed, &[2, 8]);
    }
}

/// The wide sweeps, jobs ∈ {1, 2, 8} across three seeds each — the
/// `exp_all`-shaped grids (cp × owd and cp × sites) that exercise every
/// cell-runner family.
#[test]
fn grid_sweeps_byte_identical_across_seeds_and_jobs() {
    for seed in [1u64, 2, 7] {
        for name in ["e2", "e9"] {
            assert_identical_across_jobs(name, seed, &[2, 8]);
        }
    }
}

/// One deterministic spot check for each remaining grid experiment so
/// the whole registry is covered (jobs 1 vs 3).
#[test]
fn remaining_sweeps_identical_serial_vs_parallel() {
    for name in ["e3", "e4", "e5", "e6", "e10"] {
        assert_identical_across_jobs(name, 5, &[3]);
    }
}

/// E11 is the sweep parallelism exists for; pin its serial/parallel
/// identity at the default seed (the golden seed).
#[test]
fn e11_identical_serial_vs_parallel() {
    assert_identical_across_jobs("e11", 1, &[4]);
}

/// Auto job resolution (`jobs = 0`) must also produce identical bytes.
#[test]
fn auto_jobs_identical_to_serial() {
    assert_identical_across_jobs("e2", 9, &[0]);
}
