//! Integration: the dynamics subsystem preserves the determinism
//! contract (DESIGN.md §2/§7) and the link-failure transport semantics.
//!
//! * Property: any seed, with a full `DynamicsSpec` enabled (locator
//!   failure, probing, link churn), replays byte-identically.
//! * Regression: a downed link never delivers packets scheduled after
//!   the failure instant, even when they interleave with in-flight
//!   deliveries and a later recovery.

use netsim::Ns;
use pcelisp::hosts::{FlowMode, FlowSpec, ServerHost};
use pcelisp::scenario::CpKind;
use pcelisp::spec::{DynEventKind, DynamicsSpec, ScenarioSpec};
use proptest::prelude::*;

/// A failure-heavy spec: RLOC failure at 1.5 s plus extra link churn on
/// the client site's second provider.
fn dynamic_spec(cp: CpKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::multi_site(cp, 2, 2);
    let qname = spec.topology.host_name(&spec.topology.sites[1], 0);
    spec.set_flows(vec![FlowSpec {
        start: Ns::ZERO,
        qname: lispwire::dnswire::Name::parse_str(&qname).expect("valid"),
        mode: FlowMode::Udp {
            packets: 60,
            interval: Ns::from_ms(50),
            size: 200,
        },
    }]);
    spec.dynamics = Some(
        DynamicsSpec::rloc_failure("D0", "D0a", Ns::from_ms(1500))
            .with_event(
                Ns::from_ms(800),
                DynEventKind::LinkDown {
                    site: "S".into(),
                    provider: "Sb".into(),
                },
            )
            .with_event(
                Ns::from_ms(2200),
                DynEventKind::LinkUp {
                    site: "S".into(),
                    provider: "Sb".into(),
                },
            ),
    );
    spec
}

fn run_trace(cp: CpKind, seed: u64) -> String {
    let mut world = dynamic_spec(cp).build(seed);
    world.sim.trace.enable();
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(8));
    world.sim.trace.render()
}

proptest! {
    /// Two runs of the same seed with dynamics enabled produce
    /// byte-identical traces, for a push plane and a pull plane.
    #[test]
    fn dynamics_same_seed_same_trace(seed in 0u64..1_000) {
        for cp in [CpKind::Pce, CpKind::LispQueue] {
            let a = run_trace(cp, seed);
            let b = run_trace(cp, seed);
            prop_assert!(!a.is_empty());
            prop_assert_eq!(a, b, "nondeterministic dynamics under {}", cp.label());
        }
    }
}

/// A downed link never delivers packets scheduled after the failure
/// instant: every post-failure arrival at the destination must have
/// crossed the *surviving* provider link, and during the window where
/// the dead link's in-flight packets have drained but recovery has not
/// happened yet, nothing arrives at all.
#[test]
fn downed_link_never_delivers_post_failure_sends() {
    let t_fail = Ns::from_ms(1500);
    let mut spec = ScenarioSpec::multi_site(CpKind::Pce, 2, 2);
    let qname = spec.topology.host_name(&spec.topology.sites[1], 0);
    spec.set_flows(vec![FlowSpec {
        start: Ns::ZERO,
        qname: lispwire::dnswire::Name::parse_str(&qname).expect("valid"),
        mode: FlowMode::Udp {
            packets: 60,
            interval: Ns::from_ms(50),
            size: 200,
        },
    }]);
    // Raw link failure, no control-plane reaction: traffic to D0's
    // primary locator must stop dead and never resume.
    spec.dynamics = Some(DynamicsSpec::new().with_event(
        t_fail,
        DynEventKind::LinkDown {
            site: "D0".into(),
            provider: "D0a".into(),
        },
    ));
    spec.pce_policy = pcelisp::spec::SelectionPolicy::MinCost;
    let mut world = spec.build(1);
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(8));

    let arrivals = world.udp_arrivals("D0");
    assert!(!arrivals.is_empty(), "flow must run before the failure");
    // In-flight horizon: WAN OWD (30 ms) + LAN hops; nothing sent after
    // t_fail may arrive, so arrivals stop within it.
    let horizon = t_fail + Ns::from_ms(100);
    let last = *arrivals.last().expect("non-empty");
    assert!(
        last <= horizon,
        "a packet sent after the failure instant was delivered at {last} \
         (failure at {t_fail}); the downed link must not carry it"
    );
    // The link admin event beat same-instant sends: the down-drop
    // counter accounts for every missing packet.
    let sent = u64::from(world.records()[0].data_sent);
    let delivered = world
        .sim
        .node_ref::<ServerHost>(world.site("D0").host)
        .total_udp();
    assert!(sent > delivered, "failure must strand packets");
    assert!(world.sim.total_down_drops() > 0);
}

/// Observable output of a run, for the metamorphic node-crash checks:
/// flow records, destination arrival times, and total delivery.
fn observables(spec: &ScenarioSpec, seed: u64) -> (String, Vec<Ns>, u64) {
    let mut world = spec.build(seed);
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(8));
    (
        format!("{:?}", world.records()),
        world.udp_arrivals("D0"),
        world.server_udp_received(),
    )
}

/// Flows to D0 only, so D1's per-site mapping nodes carry no traffic.
fn d0_only_spec(cp: CpKind) -> ScenarioSpec {
    let mut spec = ScenarioSpec::multi_site(cp, 2, 2);
    let qname = spec.topology.host_name(&spec.topology.sites[1], 0);
    spec.set_flows(vec![FlowSpec {
        start: Ns::from_ms(100),
        qname: lispwire::dnswire::Name::parse_str(&qname).expect("valid"),
        mode: FlowMode::Udp {
            packets: 40,
            interval: Ns::from_ms(50),
            size: 200,
        },
    }]);
    spec
}

proptest! {
    /// Metamorphic: a node crash scheduled *after* the run horizon is
    /// indistinguishable from no crash at all — the event never fires,
    /// so even the raw trace must match byte-for-byte.
    #[test]
    fn node_crash_after_horizon_is_invisible(seed in 0u64..500) {
        for cp in [CpKind::Pce, CpKind::Cons { cdr_depth: 1 }] {
            let base = d0_only_spec(cp);
            let crashed = base.clone().with(|s| {
                s.dynamics = Some(DynamicsSpec::mapsys_outage(
                    "S",
                    Ns::from_secs(100),
                    Ns::from_secs(101),
                ));
            });
            let a = observables(&base, seed);
            let b = observables(&crashed, seed);
            prop_assert_eq!(a, b, "post-horizon crash visible under {}", cp.label());
        }
    }

    /// Metamorphic: crashing a mapping node that serves no traffic
    /// (D1's CAR / PCE bump, while every flow targets D0) changes no
    /// observable output.
    #[test]
    fn crash_of_idle_mapping_node_is_invisible(seed in 0u64..500) {
        for cp in [CpKind::Pce, CpKind::Cons { cdr_depth: 1 }] {
            let base = d0_only_spec(cp);
            let crashed = base.clone().with(|s| {
                s.dynamics = Some(DynamicsSpec::mapsys_outage(
                    "D1",
                    Ns::from_ms(1000),
                    Ns::from_ms(2000),
                ));
            });
            let a = observables(&base, seed);
            let b = observables(&crashed, seed);
            prop_assert_eq!(a, b, "idle-node crash visible under {}", cp.label());
        }
    }
}
