//! Integration: the TE claims — independent one-way tunnels spread
//! inbound load; push-to-all-ITRs makes egress moves lossless.

use pcelisp::experiments::e5_te::{run_ablation_push, run_te_cell};
use pcelisp::scenario::CpKind;

#[test]
fn inbound_te_spreads_both_domains() {
    let pce = run_te_cell(CpKind::Pce, 10, 11);
    assert!(pce.inbound_d[0] > 0 && pce.inbound_d[1] > 0, "{pce:?}");
    assert!(pce.inbound_s[0] > 0 && pce.inbound_s[1] > 0, "{pce:?}");
    let vanilla = run_te_cell(CpKind::LispQueue, 10, 11);
    assert!(
        pce.imbalance_d.max < vanilla.imbalance_d.max,
        "pce {pce:?} vanilla {vanilla:?}"
    );
}

#[test]
fn ablation_a1_push_all_is_lossless() {
    let r = run_ablation_push(11);
    assert_eq!(r.push_all.2, 0, "{r:?}");
    assert_eq!(r.push_all.0, r.push_all.1, "{r:?}");
    assert!(r.push_one.2 > 0, "{r:?}");
}
