//! Integration: the cross-control-plane comparisons keep the paper's
//! qualitative shape (who wins, and roughly by how much).

use netsim::Ns;
use pcelisp::experiments::e2_drops::run_drops_cell;
use pcelisp::experiments::e3_resolution::run_resolution_cell;
use pcelisp::experiments::e4_tcp_setup::run_setup_cell;
use pcelisp::scenario::CpKind;

#[test]
fn e2_shape_pce_zero_vanilla_loses() {
    let owd = Ns::from_ms(30);
    let pce = run_drops_cell(CpKind::Pce, owd, 5);
    let nerd = run_drops_cell(CpKind::Nerd, owd, 5);
    let drop = run_drops_cell(CpKind::LispDrop, owd, 5);
    let alt = run_drops_cell(CpKind::Alt { hops: 4 }, owd, 5);
    assert_eq!(pce.miss_drops + pce.queued, 0);
    assert_eq!(nerd.miss_drops + nerd.queued, 0);
    assert!(drop.miss_drops > 0);
    assert!(alt.miss_drops >= drop.miss_drops);
    assert_eq!(pce.delivered, pce.sent);
}

#[test]
fn e3_shape_ratio_one_for_pce_grows_with_overlay_depth() {
    let owd = Ns::from_ms(30);
    let pce = run_resolution_cell(CpKind::Pce, owd, 5);
    let mrms = run_resolution_cell(CpKind::LispDrop, owd, 5);
    let alt4 = run_resolution_cell(CpKind::Alt { hops: 4 }, owd, 5);
    let alt8 = run_resolution_cell(CpKind::Alt { hops: 8 }, owd, 5);
    assert!((pce.ratio - 1.0).abs() < 1e-9);
    assert!(mrms.ratio > 1.0);
    assert!(alt4.t_map_eff_ms > mrms.t_map_eff_ms);
    assert!(alt8.t_map_eff_ms > alt4.t_map_eff_ms);
}

#[test]
fn e4_shape_pce_matches_todays_internet() {
    let owd = Ns::from_ms(60);
    let nolisp = run_setup_cell(CpKind::NoLisp, owd, 5);
    let pce = run_setup_cell(CpKind::Pce, owd, 5);
    let queue = run_setup_cell(CpKind::LispQueue, owd, 5);
    let b = nolisp.t_setup_ms.unwrap();
    let p = pce.t_setup_ms.unwrap();
    let q = queue.t_setup_ms.unwrap();
    assert!((p - b).abs() < 10.0, "pce {p} vs base {b}");
    assert!(q > p + 50.0, "queue {q} must pay T_map over pce {p}");
}
