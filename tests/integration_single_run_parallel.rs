//! Metamorphic check for the single-run parallel engine (DESIGN.md §12):
//! the *entire* experiment registry — every table and JSON document
//! `exp_all --json` would emit for E1–E13 — is byte-identical whether
//! each simulation runs serially or on 8 lanes.
//!
//! This is the broadest net in the suite: every control plane, workload,
//! dynamics script, and counter the experiments exercise must survive
//! the domain-parallel scheduler unchanged. A single divergent event
//! ordering anywhere shows up as a diff here.
//!
//! One `#[test]` on purpose: the lane override is process-global, so the
//! serial and parallel passes must not interleave with other tests in
//! this binary.

use netsim::pdes::set_lanes_override;
use pcelisp::experiments::registry;

/// Render every experiment the way `exp_all --json` consumes it.
fn full_registry_report(seed: u64) -> String {
    let mut out = String::new();
    for exp in registry() {
        let report = exp.run(seed, 2);
        out.push_str(&format!("== {} ==\n", exp.name()));
        for table in report.tables() {
            out.push_str(&table.render());
            out.push('\n');
        }
        out.push_str(&report.to_json());
        out.push('\n');
    }
    out
}

#[test]
fn exp_all_json_byte_identical_serial_vs_eight_lanes() {
    set_lanes_override(1);
    let serial = full_registry_report(1);
    set_lanes_override(8);
    let parallel = full_registry_report(1);
    set_lanes_override(0); // restore env-driven default
    assert!(serial.contains("== e1 ==") && serial.contains("== e13 =="));
    assert_eq!(
        serial, parallel,
        "registry output drifted between serial and 8-lane runs"
    );
}
