//! Golden-compat pins: the `ScenarioSpec::fig1` preset must reproduce
//! the pre-redesign E1–E8 tables **byte-identically** at the default
//! seed (1). The golden files under `tests/golden/` were rendered by the
//! hand-built `Fig1Builder` world before the declarative-spec redesign;
//! any drift in node ordering, link setup, addressing, or formatting
//! shows up here as a diff.
//!
//! Regenerate (only when an intentional behaviour change is being made)
//! with `UPDATE_GOLDEN=1 cargo test --test golden_compat`.

use pcelisp::experiments::{
    e10_recovery, e11_scale_xl, e12_adversarial, e13_availability, e1_fig1, e2_drops,
    e3_resolution, e4_tcp_setup, e5_te, e6_cache, e7_reverse, e8_overhead,
};
use std::path::PathBuf;

const SEED: u64 = 1;

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(format!("{name}.txt"))
}

fn check(name: &str, rendered: &str) {
    let path = golden_path(name);
    if std::env::var("UPDATE_GOLDEN").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, rendered).unwrap();
        return;
    }
    let want = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("missing golden file {}: {e}", path.display()));
    assert_eq!(
        rendered, want,
        "{name} drifted from the pre-redesign golden table"
    );
}

#[test]
fn e1_fig1_table_golden() {
    check("e1_fig1", &e1_fig1::run_fig1_trace(SEED).table().render());
}

#[test]
fn e2_drops_table_golden() {
    check("e2_drops", &e2_drops::run_drops(SEED).table().render());
}

#[test]
fn e3_resolution_table_golden() {
    check(
        "e3_resolution",
        &e3_resolution::run_resolution(SEED).table().render(),
    );
}

#[test]
fn e3_ablation_precompute_golden() {
    let (pre, demand) = e3_resolution::run_ablation_precompute(SEED);
    check(
        "e3_ablation_precompute",
        &format!("A2 ablation: precomputed = {pre:.1} ms; on-demand = {demand:.1} ms\n"),
    );
}

#[test]
fn e4_tcp_setup_table_golden() {
    check(
        "e4_tcp_setup",
        &e4_tcp_setup::run_tcp_setup(SEED).table().render(),
    );
}

#[test]
fn e5_te_table_golden() {
    check("e5_te", &e5_te::run_te(SEED).table().render());
}

#[test]
fn e5_ablation_push_table_golden() {
    check(
        "e5_ablation_push",
        &e5_te::run_ablation_push(SEED).table().render(),
    );
}

#[test]
fn e6_cache_table_golden() {
    check("e6_cache", &e6_cache::run_cache(SEED).table().render());
}

#[test]
fn e7_reverse_table_golden() {
    check(
        "e7_reverse",
        &e7_reverse::run_reverse(4, SEED).table().render(),
    );
}

#[test]
fn e8_overhead_table_golden() {
    check(
        "e8_overhead",
        &e8_overhead::run_overhead(SEED).table().render(),
    );
}

// E10 postdates the redesign; its golden pins the dynamics subsystem's
// determinism contract from the experiment's introduction onward (a
// locator failure must replay bit-identically, recovery timings included).
#[test]
fn e10_recovery_table_golden() {
    check(
        "e10_recovery",
        &e10_recovery::run_recovery(SEED).table().render(),
    );
}

// E11 pins the XL-scale sweep — run *in parallel* (auto jobs), because
// byte-identity across thread counts is exactly the contract the golden
// protects (DESIGN.md §8).
#[test]
fn e11_scale_xl_table_golden() {
    check(
        "e11_scale_xl",
        &e11_scale_xl::run_scale_xl_jobs(SEED, 0).table().render(),
    );
}

// E12 pins the adversarial sweep — also run with auto jobs, because the
// attack scripts are scheduled at build time and must replay
// byte-identically at any `--jobs` level (DESIGN.md §8/§10).
#[test]
fn e12_adversarial_tables_golden() {
    let r = e12_adversarial::run_adversarial_jobs(SEED, 0);
    let rendered: Vec<String> = r.tables().iter().map(|t| t.render()).collect();
    check("e12_adversarial", &rendered.join("\n"));
}

// E13 pins the availability sweep — crash/restart of the mapping node
// plus deterministic failover must replay byte-identically, and (like
// E11/E12) at any `--jobs` level, so the golden runs with auto jobs.
#[test]
fn e13_availability_table_golden() {
    check(
        "e13_availability",
        &e13_availability::run_availability_jobs(SEED, 0).table().render(),
    );
}
