//! Property: adversarial worlds keep the determinism contract
//! (DESIGN.md §8/§10). Attack scripts are compiled at build time and
//! scheduled through the simulator's `(time, seq)` timer order, so a
//! flood scenario must replay byte-identically for any seed, defended or
//! not — and the E12 report must not depend on the sweep's `--jobs`
//! level.

use netsim::Ns;
use pcelisp::experiments::e12_adversarial;
use pcelisp::prelude::*;
use proptest::prelude::*;

fn flood_trace(seed: u64, defended: bool) -> String {
    // A deliberately small world: every proptest case runs two of them.
    let mut world = ScenarioSpec::multi_site(CpKind::LispQueue, 3, 2)
        .with(|s| {
            s.eid_space = Some(vec![Prefix::new(Ipv4Address::new(120, 0, 0, 0), 8)]);
            s.cache = CacheSpec::bounded(16, EvictionPolicy::Lru).with_sweep();
            if defended {
                s.defense = DefenseSpec::armed();
            }
            s.attackers = vec![AttackerSpec::MapRequestFlood {
                rate_per_sec: 100.0,
                packets: 40,
            }];
        })
        .build(seed);
    world.sim.trace.enable();
    world.schedule_all_flows();
    let horizon = world.last_flow_start() + Ns::from_secs(10);
    world.sim.run_until(horizon);
    world.sim.trace.render()
}

proptest! {
    #[test]
    fn flood_world_replays_byte_identically(seed in 1u64..10_000, defended in any::<bool>()) {
        let a = flood_trace(seed, defended);
        let b = flood_trace(seed, defended);
        prop_assert!(!a.is_empty());
        prop_assert_eq!(a, b, "flood scenario diverged for seed {}", seed);
    }
}

#[test]
fn flood_schedule_depends_on_the_seed() {
    let a = flood_trace(1, false);
    let b = flood_trace(2, false);
    assert_ne!(a, b, "different seeds must reshuffle workload and scans");
}

// The E12 sweep fans cells across a worker pool; the report must be
// byte-identical at any worker count (`--jobs 1` vs `--jobs 8`).
#[test]
fn e12_report_is_jobs_invariant() {
    let render = |jobs: usize| {
        let r = e12_adversarial::run_adversarial_jobs(1, jobs);
        r.tables()
            .iter()
            .map(|t| t.render())
            .collect::<Vec<_>>()
            .join("\n")
    };
    assert_eq!(render(1), render(8), "E12 report depends on --jobs");
}
