//! Integration: bit-for-bit reproducibility — the whole Fig. 1 world,
//! every control plane, same seed ⇒ identical trace; different seed with
//! randomized workload ⇒ different schedule. Also pins determinism for a
//! non-Fig.1 multi-site spec (same spec + seed ⇒ identical traces).

use netsim::Ns;
use pcelisp::hosts::FlowMode;
use pcelisp::scenario::{flow_script, CpKind};
use pcelisp::spec::ScenarioSpec;
use pcelisp::workload::PoissonArrivals;

fn run_trace(cp: CpKind, seed: u64) -> String {
    let mut world = ScenarioSpec::fig1(cp)
        .with(|s| {
            s.set_flows(flow_script(
                &[Ns::ZERO, Ns::from_ms(100)],
                4,
                FlowMode::Udp {
                    packets: 5,
                    interval: Ns::from_ms(2),
                    size: 300,
                },
            ));
        })
        .build(seed);
    world.sim.trace.enable();
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(20));
    world.sim.trace.render()
}

#[test]
fn same_seed_same_trace_all_control_planes() {
    for cp in CpKind::all() {
        let a = run_trace(cp, 42);
        let b = run_trace(cp, 42);
        assert_eq!(a, b, "nondeterminism under {}", cp.label());
        assert!(!a.is_empty());
    }
}

#[test]
fn multi_site_spec_same_seed_same_trace() {
    let run = |seed: u64| -> String {
        let mut world = ScenarioSpec::multi_site(CpKind::Pce, 6, 4).build(seed);
        world.sim.trace.enable();
        world.schedule_all_flows();
        let horizon = world.last_flow_start() + Ns::from_secs(30);
        world.sim.run_until(horizon);
        world.sim.trace.render()
    };
    let a = run(42);
    let b = run(42);
    assert_eq!(a, b, "multi-site spec must be deterministic by seed");
    assert!(!a.is_empty());
    let c = run(43);
    assert_ne!(a, c, "a different seed must reshuffle the Zipf workload");
}

#[test]
fn workload_differs_across_seeds() {
    let a = PoissonArrivals::new(1, 10.0).take(50);
    let b = PoissonArrivals::new(2, 10.0).take(50);
    assert_ne!(a, b);
}
