//! Compare every control plane on the two headline metrics: packets lost
//! or delayed during mapping resolution (E2) and TCP connection-setup
//! latency (E4), at one representative inter-domain delay.
//!
//! ```sh
//! cargo run --release --example cp_comparison
//! ```

use pcelisp::experiments::e2_drops::{e2_variants, run_drops_cell};
use pcelisp::experiments::e4_tcp_setup::{e4_variants, run_setup_cell};
use pcelisp::prelude::*;

fn main() {
    let owd = Ns::from_ms(30);

    let mut drops = pcelisp::experiments::e2_drops::DropsResult::default();
    for cp in e2_variants() {
        drops.rows.push(run_drops_cell(cp, owd, 1));
    }
    drops.section().table().print();
    println!();

    let mut setup = pcelisp::experiments::e4_tcp_setup::SetupResult::default();
    for cp in e4_variants() {
        setup.rows.push(run_setup_cell(cp, owd, 1));
    }
    setup.section().table().print();
    println!();
    println!(
        "Shape check: PCE loses nothing and matches the no-LISP setup time;\n\
         vanilla LISP pays T_map on the handshake (queue) or fails outright (drop).\n\
         The same rows are machine-readable: `exp_all --only e2,e4 --json out.json`."
    );
}
