//! Multi-site scale: the scenario the declarative spec layer unlocks.
//! One client site talks to N destination sites with Zipf cross-site
//! popularity; every control plane is compared as N grows (the E9
//! experiment, shown here at a glance).
//!
//! Watch NERD's pushed bytes explode with the site count while the PCE
//! control plane's state keeps tracking active flows only, and the pull
//! systems' resolution latency hold packets (or drop them) at every
//! cold site.
//!
//! ```sh
//! cargo run --release --example scale_sites
//! ```

use pcelisp::experiments::e9_scale::run_scale_cell;
use pcelisp::prelude::*;

fn main() {
    // The full sweep is `exp_scale` / `exp_all --only e9`; here a
    // compact slice: three control planes at N ∈ {2, 8, 32}.
    let mut table = Table::new(
        "Scale slice: N destination sites, Zipf(1.0) cross-site popularity",
        &[
            "cp",
            "n_sites",
            "delivered/sent",
            "miss_drops",
            "mean_lat_ms",
            "ctl_msgs",
            "push_bytes",
        ],
    );
    for n in [2usize, 8, 32] {
        for cp in [CpKind::LispQueue, CpKind::Nerd, CpKind::Pce] {
            let row = run_scale_cell(cp, n, 1);
            table.row(&[
                row.cp.clone(),
                row.n_sites.to_string(),
                format!("{}/{}", row.delivered, row.sent),
                row.miss_drops.to_string(),
                format!("{:.1}", row.mean_map_latency_ms),
                row.control_msgs.to_string(),
                row.push_bytes.to_string(),
            ]);
        }
    }
    table.print();

    println!();
    println!(
        "Declaring a custom world is one call away — e.g. 12 sites with 8\n\
         hosts each: ScenarioSpec::multi_site(CpKind::Pce, 12, 8), then\n\
         tweak any SiteSpec/ProviderSpec field before .build(seed)."
    );

    // And the spec is open: hand-build an asymmetric world where one
    // destination site sits far away (150 ms provider links).
    let mut spec = ScenarioSpec::multi_site(CpKind::Pce, 3, 4);
    for p in &mut spec.topology.sites[3].providers {
        p.owd = Ns::from_ms(150);
    }
    let mut world = spec.build(7);
    world.schedule_all_flows();
    let horizon = world.last_flow_start() + Ns::from_secs(30);
    world.sim.run_until(horizon);
    println!();
    println!(
        "Asymmetric world: {} flows resolved, {} packets delivered across\n\
         {} destination sites (site D2 at 150 ms OWD).",
        world
            .records()
            .iter()
            .filter(|r| r.t_answer.is_some())
            .count(),
        world.server_udp_received(),
        world.server_sites().count(),
    );
}
