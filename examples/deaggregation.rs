//! The paper's future-work scenario (§3): Latin America has "the world's
//! largest IPv4 de-aggregation factor" — many small, independently routed
//! prefixes. This example sweeps the number of de-aggregated destination
//! EIDs and compares how mapping state and push traffic scale:
//!
//! * **NERD** must push the *entire* database to every xTR: state and
//!   bytes grow linearly with de-aggregation, whether or not anyone talks
//!   to those destinations.
//! * The **PCE control plane** installs state per *active flow* only:
//!   cost follows traffic, not table size.
//!
//! ```sh
//! cargo run --release --example deaggregation
//! ```

use mapsys::NerdAuthority;
use pcelisp::hosts::FlowMode;
use pcelisp::prelude::*;
use pcelisp::scenario::flow_script;

fn run_cell(cp: CpKind, dest_count: usize, flows: usize) -> (u64, u64) {
    let starts: Vec<Ns> = (0..flows).map(|i| Ns::from_ms(300 * i as u64)).collect();
    let mut world = ScenarioSpec::fig1(cp)
        .with(|s| {
            s.set_dest_count(dest_count);
            s.fine_grained_mappings = true; // de-aggregated /32 registrations
            s.set_flows(flow_script(
                &starts,
                dest_count,
                FlowMode::Udp {
                    packets: 2,
                    interval: Ns::from_ms(2),
                    size: 200,
                },
            ));
        })
        .build(1);
    world.schedule_all_flows();
    world.sim.run_until(Ns::from_secs(60));

    let mut itr_state = 0u64;
    for x in world.all_xtrs() {
        let xtr = world.sim.node_ref::<Xtr>(x);
        itr_state += xtr.cache.len() as u64 + xtr.flows.len() as u64;
    }
    let push_bytes = world
        .nerd_node
        .map(|n| world.sim.node_ref::<NerdAuthority>(n).bytes_pushed)
        .unwrap_or(0);
    (itr_state, push_bytes)
}

fn main() {
    let flows = 6;
    let mut table = Table::new(
        "De-aggregation sweep: xTR mapping state and pushed bytes vs prefix count",
        &[
            "dest_prefixes",
            "nerd_itr_state",
            "nerd_push_bytes",
            "pce_itr_state",
            "pce_push_bytes",
        ],
    );
    for dest_count in [8usize, 32, 96, 192] {
        let (nerd_state, nerd_bytes) = run_cell(CpKind::Nerd, dest_count, flows);
        let (pce_state, pce_bytes) = run_cell(CpKind::Pce, dest_count, flows);
        table.row(&[
            dest_count.to_string(),
            nerd_state.to_string(),
            nerd_bytes.to_string(),
            pce_state.to_string(),
            pce_bytes.to_string(),
        ]);
    }
    table.print();
    println!();
    println!(
        "NERD's cost tracks the de-aggregation factor (every xTR holds every\n\
         prefix); the PCE control plane's state tracks the {flows} active flows\n\
         regardless of how finely the destination space is sliced — the\n\
         property the paper's §3 future work is after."
    );
}
