//! Quickstart: declare the paper's Fig. 1 world with the PCE control
//! plane via [`ScenarioSpec::fig1`], run one TCP flow from `E_S` to
//! `host-0.d.example`, and print the full step-by-step control-plane
//! trace plus the headline timings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pcelisp::experiments::e1_fig1::run_fig1_trace;
use pcelisp::prelude::*;

fn main() {
    // The one-liner most tools use: the registered E1 experiment.
    let result = run_fig1_trace(0);

    println!("── Fig. 1 control-plane trace ───────────────────────────────────────");
    // Show only the interesting control-plane lines, in order.
    for line in result.trace.lines() {
        if line.contains("step")
            || line.contains("resolver asks")
            || line.contains("IPC")
            || line.contains("installed flow")
            || line.contains("decap")
            || line.contains("reverse-sync")
            || line.contains("established")
        {
            println!("{line}");
        }
    }
    println!();
    result.table().print();
    println!();
    println!(
        "The mapping was installed at every ITR before the DNS answer reached \
         the end-host: {} — the paper's claims C1 and C2 in one run.",
        result.installed_before_answer
    );

    // The same world, built by hand from the declarative spec — the
    // starting point for describing *any* other world (see
    // ScenarioSpec::multi_site and the scale_sites example).
    let mut world = ScenarioSpec::fig1(CpKind::Pce).build(1);
    world.start_flow(0);
    world.sim.run_until(Ns::from_secs(5));
    let rec = &world.records()[0];
    println!();
    println!(
        "Spec-built world: site S has providers {:?}, T_DNS = {:.1} ms.",
        world.site("S").provider_names,
        rec.dns_time().map(|t| t.as_ms_f64()).unwrap_or(f64::NAN)
    );
}
