//! Quickstart: build the paper's Fig. 1 world with the PCE control plane,
//! run one TCP flow from `E_S` to `host-0.d.example`, and print the full
//! step-by-step control-plane trace plus the headline timings.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pcelisp::experiments::e1_fig1::run_fig1_trace;

fn main() {
    let result = run_fig1_trace(0);

    println!("── Fig. 1 control-plane trace ───────────────────────────────────────");
    // Show only the interesting control-plane lines, in order.
    for line in result.trace.lines() {
        if line.contains("step")
            || line.contains("resolver asks")
            || line.contains("IPC")
            || line.contains("installed flow")
            || line.contains("decap")
            || line.contains("reverse-sync")
            || line.contains("established")
        {
            println!("{line}");
        }
    }
    println!();
    result.table().print();
    println!();
    println!(
        "The mapping was installed at every ITR before the DNS answer reached \
         the end-host: {} — the paper's claims C1 and C2 in one run.",
        result.installed_before_answer
    );
}
