//! Traffic engineering with two providers per domain (paper claim C3):
//! inbound byte distribution under the PCE control plane's per-flow
//! `RLOC_S`/`RLOC_D` selection vs. the symmetric vanilla baseline, plus
//! the A1 ablation (mid-flow egress move with/without mappings
//! pre-installed at every ITR).
//!
//! ```sh
//! cargo run --release --example te_multihoming
//! ```

use pcelisp::experiments::Experiment;

fn main() {
    // E5 carries both sections (inbound TE + the A1 ablation) in one
    // registry report.
    let report = pcelisp::experiments::e5_te::E5Te.run(1, 0);
    report.print();
    println!();
    println!(
        "Vanilla LISP concentrates inbound traffic on the single registered\n\
         RLOC; the PCE control plane spreads flows across both providers of\n\
         each domain (upstream *and* downstream TE). Pushing the mapping to\n\
         ALL ITRs (step 7b) makes the mid-flow egress move lossless; pushing\n\
         to one ITR strands the moved flow."
    );
}
