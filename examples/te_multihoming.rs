//! Traffic engineering with two providers per domain (paper claim C3):
//! inbound byte distribution under the PCE control plane's per-flow
//! `RLOC_S`/`RLOC_D` selection vs. the symmetric vanilla baseline, plus
//! the A1 ablation (mid-flow egress move with/without mappings
//! pre-installed at every ITR).
//!
//! ```sh
//! cargo run --release --example te_multihoming
//! ```

use pcelisp::experiments::e5_te::{run_ablation_push, run_te};

fn main() {
    let te = run_te(1);
    te.table().print();
    println!();
    println!(
        "Vanilla LISP concentrates inbound traffic on the single registered\n\
         RLOC; the PCE control plane spreads flows across both providers of\n\
         each domain (upstream *and* downstream TE).\n"
    );

    let ablation = run_ablation_push(1);
    ablation.table().print();
    println!();
    println!(
        "Pushing the mapping to ALL ITRs (step 7b) makes the mid-flow egress\n\
         move lossless; pushing to one ITR strands the moved flow."
    );
}
