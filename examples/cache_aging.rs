//! Map-cache aging (the paper's §1 weakness: "the mapping has aged out,
//! or … was never requested before"): hit ratio versus TTL and workload
//! skew for vanilla LISP, with the PCE control plane alongside (it never
//! takes a data-driven miss).
//!
//! ```sh
//! cargo run --release --example cache_aging
//! ```

use pcelisp::experiments::Experiment;

fn main() {
    let report = pcelisp::experiments::e6_cache::E6Cache.run(3, 0);
    report.print();
    println!();
    println!(
        "Short TTLs age mappings out mid-workload (expirations > 0) and every\n\
         cold or expired destination costs a resolution round trip; skewed\n\
         (Zipf) popularity keeps hot destinations cached. The PCE rows show\n\
         zero affected packets regardless of TTL."
    );
}
